"""Read-path cost of the append-only versioned annotation store.

Not a paper figure: the operational companion to ISSUE 10's commit log.
The design claim under test is that versioning is (nearly) free at read
time — the head tables stay materialized, history is appended beside
them — so latest-state reads must stay within a small factor of a
legacy (pre-versioning) schema holding identical content.  Time-travel
(``as_of``) reads reconstruct state from the history tables and are
expected to cost more; this benchmark reports how much, at ~10x and
~100x the figure-dataset history depth (one commit per ingested
publication annotation).

Exports the machine-readable summary CI tracks to
``benchmarks/results/BENCH_history.json``.  Set ``BENCH_SMOKE=1`` for
the small CI world with relaxed assertions.

Honors ``NEBULA_BACKEND``; defaults to the shared-cache memory engine.

Run::

    PYTHONPATH=src python -m pytest benchmarks/bench_history.py -q
"""

import json
import os
import tempfile
import time

from repro import BioDatabaseSpec, generate_bio_database, get_backend
from repro.versioning import CommitLog, timetravel
from repro.versioning.schema import LEGACY_DDL

from conftest import RESULTS_DIR, report, table

BENCH_SMOKE = os.environ.get("BENCH_SMOKE") == "1"

#: The tests' figure-dataset shape; history depth scales with the
#: publication count (one ingest commit each).
FIGURE_SPEC = BioDatabaseSpec(genes=96, proteins=56, publications=300, seed=13)

SCALES = {"10x": 2, "100x": 4} if BENCH_SMOKE else {"10x": 10, "100x": 100}

#: Timed iterations per query shape (reads are sub-millisecond; the
#: loop beats timer noise).
READ_LOOPS = 30 if BENCH_SMOKE else 200

#: Acceptance ceiling: latest-state reads vs the legacy baseline.
MAX_HEAD_OVERHEAD = 2.0 if BENCH_SMOKE else 1.2

# The three latest-state query shapes the service read path issues most:
# substring find, attachments-on-a-tuple, and the corpus count.  The
# head tables and the legacy tables share one schema, so the identical
# statements run on both — the overhead measured is pure storage-layout
# cost, not SQL differences.

_FIND = (
    "SELECT annotation_id, content, author FROM _nebula_annotations "
    "WHERE content LIKE '%' || ? || '%' ORDER BY annotation_id DESC LIMIT ?"
)

_ATTACHMENTS_ON = (
    "SELECT attachment_id, annotation_id, target_table, target_rowid, "
    "target_rowid_hi, target_column, confidence, kind "
    "FROM _nebula_attachments WHERE target_table = ? "
    "AND (target_rowid IS NULL OR (target_rowid <= ? "
    "AND ? <= COALESCE(target_rowid_hi, target_rowid))) "
    "ORDER BY attachment_id"
)

_COUNT = "SELECT COUNT(*) FROM _nebula_annotations"


def _build_world(factor):
    engine = os.environ.get("NEBULA_BACKEND", "sqlite-memory")
    path = None
    if engine == "sqlite-file":
        handle = tempfile.NamedTemporaryFile(
            suffix=".db", prefix="nebula-bench-history-", delete=False
        )
        handle.close()
        path = handle.name
    backend = get_backend(engine, path=path)
    db = generate_bio_database(FIGURE_SPEC.scaled(factor), backend=backend)
    return backend, path, db


def _clone_legacy(connection):
    """A pre-versioning database holding the same latest-state content."""
    backend = get_backend("sqlite-memory")
    legacy = backend.primary
    legacy.executescript(LEGACY_DDL)
    legacy.executemany(
        "INSERT INTO _nebula_annotations VALUES (?, ?, ?, ?)",
        connection.execute(
            "SELECT annotation_id, content, author, created_seq "
            "FROM _nebula_annotations"
        ).fetchall(),
    )
    legacy.executemany(
        "INSERT INTO _nebula_attachments VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
        connection.execute(
            "SELECT attachment_id, annotation_id, target_table, target_rowid, "
            "target_rowid_hi, target_column, confidence, kind "
            "FROM _nebula_attachments"
        ).fetchall(),
    )
    return backend


def _time_ms(fn):
    fn()  # warm caches / query plans
    started = time.perf_counter()
    for _ in range(READ_LOOPS):
        fn()
    return (time.perf_counter() - started) * 1e3 / READ_LOOPS


def _read_suite_ms(connection):
    """Total latest-state read latency (ms) over the three query shapes."""
    find = _time_ms(
        lambda: connection.execute(_FIND, ("gene", 25)).fetchall()
    )
    attach = _time_ms(
        lambda: connection.execute(_ATTACHMENTS_ON, ("Gene", 17, 17)).fetchall()
    )
    count = _time_ms(lambda: connection.execute(_COUNT).fetchone())
    return {"find_ms": find, "attachments_ms": attach, "count_ms": count,
            "total_ms": find + attach + count}


def _asof_suite_ms(connection, pin):
    find = _time_ms(
        lambda: connection.execute(
            timetravel.FIND_ANNOTATIONS_AS_OF, (pin, "gene", 25)
        ).fetchall()
    )
    attach = _time_ms(
        lambda: timetravel.attachments_on_rows(connection, "Gene", pin, rowid=17)
    )
    count = _time_ms(lambda: timetravel.count_annotations(connection, pin))
    return {"find_ms": find, "attachments_ms": attach, "count_ms": count,
            "total_ms": find + attach + count}


def _measure_scale(factor):
    backend, path, db = _build_world(factor)
    legacy_backend = None
    try:
        connection = db.connection
        log = CommitLog(connection)
        pin = log.head()
        assert pin is not None  # every publication annotation committed
        head = _read_suite_ms(connection)
        asof_head = _asof_suite_ms(connection, pin)
        asof_mid = _asof_suite_ms(connection, max(1, pin // 2))
        legacy_backend = _clone_legacy(connection)
        legacy = _read_suite_ms(legacy_backend.primary)
        # Correctness cross-check while the worlds are hot: the pin at
        # head reconstructs exactly the head count.
        head_count = int(connection.execute(_COUNT).fetchone()[0])
        assert timetravel.count_annotations(connection, pin) == head_count
        return {
            "factor": factor,
            "commits": log.count_commits(),
            "annotations": head_count,
            "head": head,
            "legacy": legacy,
            "asof_head": asof_head,
            "asof_mid": asof_mid,
            "head_overhead": head["total_ms"] / legacy["total_ms"]
            if legacy["total_ms"] > 0
            else float("inf"),
        }
    finally:
        if legacy_backend is not None:
            legacy_backend.close()
        backend.close()
        if path is not None and os.path.exists(path):
            os.unlink(path)


def test_history_read_overhead():
    results = {name: _measure_scale(factor) for name, factor in SCALES.items()}

    rows = [
        [
            name,
            r["commits"],
            r["legacy"]["total_ms"],
            r["head"]["total_ms"],
            f"{r['head_overhead']:.2f}x",
            r["asof_head"]["total_ms"],
            r["asof_mid"]["total_ms"],
        ]
        for name, r in results.items()
    ]
    report(
        "history_reads",
        table(
            [
                "scale",
                "commits",
                "legacy_ms",
                "head_ms",
                "overhead",
                "asof_head_ms",
                "asof_mid_ms",
            ],
            rows,
        ),
    )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_history.json"), "w") as handle:
        json.dump(
            {
                "mode": "smoke" if BENCH_SMOKE else "full",
                "backend": os.environ.get("NEBULA_BACKEND", "sqlite-memory"),
                "read_loops": READ_LOOPS,
                "max_head_overhead": MAX_HEAD_OVERHEAD,
                "scales": results,
            },
            handle,
            indent=2,
            sort_keys=True,
        )

    for name, r in results.items():
        # The design claim: materialized-head reads stay within the
        # acceptance ceiling of the pre-versioning layout (an absolute
        # floor guards the sub-10µs regime where ratios are all noise).
        assert r["head"]["total_ms"] <= (
            r["legacy"]["total_ms"] * MAX_HEAD_OVERHEAD + 0.05
        ), (name, r["head"], r["legacy"])
        # Time travel must function at every scale; it may cost more
        # than head reads but not pathologically so (reconstruction is
        # one aggregate scan of the history, not a per-row replay).
        assert r["asof_head"]["total_ms"] < max(
            r["head"]["total_ms"] * 50.0, 250.0
        ), (name, r["asof_head"])
