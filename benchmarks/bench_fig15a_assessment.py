"""E9 — Figure 15(a): verification & assessment criteria, tuned bounds.

Setup per the paper: the L^100 set on D_large; the verification bounds
are tuned automatically by BoundsSetting over a training set of the
database's own annotations (the paper used 500; scaled here); eight
configurations are compared — Nebula-0.6 / Nebula-0.8 full search plus
six focal-spreading (Δ, K) combinations.

Paper shapes: no configuration dominates everywhere; Nebula-0.8 requires
less manual effort (M_F) but shows ~20% false negatives; the spreading
configurations with K = 3 or 4 perform close to the full search.
"""

import pytest

from repro.core.assessment import assess, average_assessments
from repro.core.bounds import BoundsSetting

from conftest import make_nebula, report, table, training_samples

SPREAD_CONFIGS = [(1, 2), (1, 3), (2, 2), (2, 3), (3, 3), (3, 4)]


def _assess_config(nebula, annotations, delta, beta_lower, beta_upper,
                   use_spreading, radius=None):
    assessments = []
    for annotation in annotations:
        focal = annotation.focal(delta)
        result = nebula.analyze(
            annotation.text, focal=focal,
            use_spreading=use_spreading, radius=radius, shared=False,
        )
        assessments.append(
            assess(result.candidates, set(annotation.ideal_refs), focal,
                   beta_lower, beta_upper)
        )
    return average_assessments(assessments)


@pytest.mark.benchmark(group="fig15")
def test_fig15a_assessment(benchmark, dataset_large):
    db, workload = dataset_large
    annotations = workload.group(100)

    # Tune the bounds on the database's own annotations (D_Training).
    nebula_06 = make_nebula(db, 0.6)
    samples = training_samples(db, nebula_06, count=100, delta=1)
    choice = BoundsSetting(fn_limit=0.30, fp_limit=0.10).tune(samples)
    lower, upper = choice.beta_lower, choice.beta_upper

    rows = []
    results = {}
    for epsilon in (0.6, 0.8):
        nebula = make_nebula(db, epsilon)
        averaged = _assess_config(
            nebula, annotations, delta=1,
            beta_lower=lower, beta_upper=upper, use_spreading=False,
        )
        results[f"Nebula-{epsilon}"] = averaged
        rows.append(
            [f"Nebula-{epsilon}", averaged.f_n, averaged.f_p,
             averaged.m_f, averaged.m_h]
        )
    for delta, radius in SPREAD_CONFIGS:
        averaged = _assess_config(
            nebula_06, annotations, delta=delta,
            beta_lower=lower, beta_upper=upper,
            use_spreading=True, radius=radius,
        )
        results[f"focal d={delta} K={radius}"] = averaged
        rows.append(
            [f"focal d={delta} K={radius}", averaged.f_n, averaged.f_p,
             averaged.m_f, averaged.m_h]
        )
    header = [f"bounds=({lower:.2f}, {upper:.2f})"]
    report(
        "fig15a_assessment",
        header + table(["config", "F_N", "F_P", "M_F", "M_H"], rows),
    )

    # Shape assertions.
    for averaged in results.values():
        assert averaged.f_p <= 0.15
    # A generous-radius spreading config stays close to the full search.
    full = results["Nebula-0.6"]
    wide = results["focal d=3 K=4"]
    assert wide.f_n <= full.f_n + 0.25

    sample = annotations[0]
    benchmark(lambda: nebula_06.analyze(sample.text, focal=sample.focal(1)))
