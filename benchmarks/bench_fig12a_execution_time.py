"""E4 — Figure 12(a): keyword-query execution time, Naive vs Nebula.

Paper shape: the Naive approach (whole annotation as one query) is orders
of magnitude slower than Nebula-0.6 / Nebula-0.8 and becomes infeasible
beyond the smallest annotation set; Nebula's two variants are comparable.
Per the paper we run Naive only on L^50 (its feasible set).
"""

import time

import pytest

from repro.search.naive import NaiveSearch

from conftest import dump_metrics, make_nebula, report, table

SIZE_GROUPS = (50, 100, 500, 1000)


def _nebula_execution_time(nebula, annotations):
    """Sum of per-query execution times (generation excluded), seconds."""
    total = 0.0
    for annotation in annotations:
        report_ = nebula.analyze(annotation.text)
        total += report_.identified.elapsed
    return total / len(annotations)


@pytest.mark.benchmark(group="fig12a")
def test_fig12a_execution_time(benchmark, all_datasets):
    rows = []
    naive_avg = {}
    nebula_avg = {}
    for scale, (db, workload) in all_datasets.items():
        naive = NaiveSearch(db.connection)
        annotations_50 = workload.group(50)
        started = time.perf_counter()
        for annotation in annotations_50:
            naive.search(annotation.text)
        naive_avg[scale] = (time.perf_counter() - started) / len(annotations_50)
        rows.append([scale, "L^50", "Naive", naive_avg[scale] * 1e3])
        for epsilon in (0.6, 0.8):
            nebula = make_nebula(db, epsilon)
            for size in SIZE_GROUPS:
                avg = _nebula_execution_time(nebula, workload.group(size))
                nebula_avg[(scale, epsilon, size)] = avg
                rows.append([scale, f"L^{size}", f"Nebula-{epsilon}", avg * 1e3])
    report(
        "fig12a_execution_time",
        table(["dataset", "set", "approach", "avg_exec_ms"], rows),
    )

    # Paper shape: naive is at least 10x slower than either Nebula variant
    # on every dataset (the paper reports ~5 orders of magnitude on 18 GB).
    for scale in all_datasets:
        for epsilon in (0.6, 0.8):
            assert naive_avg[scale] > 10 * nebula_avg[(scale, epsilon, 50)]

    db, workload = all_datasets["large"]
    nebula = make_nebula(db, 0.6)
    sample = workload.group(100)[0]
    benchmark(lambda: nebula.analyze(sample.text))

    # SQL statement / row counters + sharing ratios next to the table.
    dump_metrics("fig12a_metrics")
