"""E10 — Figure 15(b): degenerate bounds β_lower = β_upper (no experts).

With a single threshold there is no pending band and therefore zero
expert involvement.  Paper shape: F_P gets significantly higher (wrong
predictions auto-accept unchecked) and F_N also rises noticeably; the
paper repeated the experiment with several single-threshold values and
found F_N/F_P "relatively very high" in all cases — concluding experts
cannot be eliminated entirely.

Here the degenerate settings are swept over several thresholds for the
headline Nebula-0.6 configuration and compared against the tuned
two-sided band.  The reproduction's synthetic references are cleaner than
UniProt text, so the tuned band already needs very little expert effort —
but collapsing the band still breaks the accuracy limits the tuner is
required to hold (F_P explodes at low thresholds, F_N at high ones).
"""

import pytest

from repro.core.assessment import assess, average_assessments
from repro.core.bounds import BoundsSetting

from conftest import make_nebula, report, table, training_samples

FN_LIMIT = 0.30
FP_LIMIT = 0.10
SINGLE_THRESHOLDS = (0.3, 0.4, 0.5, 0.6, 0.7, 0.9)


def _run(nebula, annotations, delta, lower, upper):
    assessments = []
    for annotation in annotations:
        focal = annotation.focal(delta)
        result = nebula.analyze(annotation.text, focal=focal, shared=False)
        assessments.append(
            assess(result.candidates, set(annotation.ideal_refs), focal,
                   lower, upper)
        )
    return average_assessments(assessments)


@pytest.mark.benchmark(group="fig15")
def test_fig15b_no_expert(benchmark, dataset_large):
    db, workload = dataset_large
    annotations = workload.group(100)
    nebula = make_nebula(db, 0.6)

    samples = training_samples(db, nebula, count=100, delta=1)
    tuned = BoundsSetting(fn_limit=FN_LIMIT, fp_limit=FP_LIMIT).tune(samples)

    rows = []
    with_expert = _run(
        nebula, annotations, 1, tuned.beta_lower, tuned.beta_upper
    )
    rows.append(
        [f"tuned ({tuned.beta_lower:.2f}, {tuned.beta_upper:.2f})",
         with_expert.f_n, with_expert.f_p, with_expert.m_f]
    )
    degenerate = {}
    for threshold in SINGLE_THRESHOLDS:
        averaged = _run(nebula, annotations, 1, threshold, threshold)
        assert averaged.m_f == 0  # no pending band by construction
        degenerate[threshold] = averaged
        rows.append(
            [f"single {threshold:.1f}", averaged.f_n, averaged.f_p, 0]
        )
    report(
        "fig15b_no_expert",
        table(["bounds", "F_N", "F_P", "M_F"], rows),
    )

    # The tuned band satisfies both limits...
    assert with_expert.f_n <= FN_LIMIT
    assert with_expert.f_p <= FP_LIMIT
    # ...while degenerate thresholds break them: low thresholds blow up
    # F_P (unchecked auto-accepts), high thresholds blow up F_N.
    assert degenerate[0.3].f_p > FP_LIMIT
    assert degenerate[0.9].f_n > with_expert.f_n
    # The combined error of every degenerate setting that beats the tuned
    # F_P must pay for it in F_N (and vice versa) — no free lunch: no
    # single threshold dominates the tuned band on both criteria.
    for averaged in degenerate.values():
        assert (
            averaged.f_p > with_expert.f_p + 1e-9
            or averaged.f_n >= with_expert.f_n - 1e-9
        )

    sample = annotations[0]
    benchmark(lambda: nebula.analyze(sample.text, focal=sample.focal(1)))
