"""E16b — §6.2 design-choice ablation: direct vs multi-hop focal reward.

The paper considers extending the focal adjustment to reward shortest
paths ("multiplying the weights of the in-between edges") and rejects it:
"semantically weaker and may cause model overfitting".  This bench runs
both modes and quantifies the trade: the path variants buy at most a
marginal separation gain (multiplied edge weights decay fast, so 2+-hop
rewards are tiny) while paying a bounded-DP path search per candidate x
focal on every annotation — negligible benefit for real cost and extra
model complexity, which is the paper's engineering call.
"""

import time

import pytest

from repro.core.assessment import assess, average_assessments

from conftest import make_nebula, report, table


def _separation(result, missing):
    true_conf = [c.confidence for c in result.candidates if c.ref in missing]
    junk_conf = [c.confidence for c in result.candidates if c.ref not in missing]
    if not true_conf or not junk_conf:
        return None
    return sum(true_conf) / len(true_conf) - sum(junk_conf) / len(junk_conf)


@pytest.mark.benchmark(group="ablation")
def test_ablation_focal_mode(benchmark, dataset_large):
    db, workload = dataset_large
    annotations = workload.group(100)

    rows = []
    margins = {}
    assessments = {}
    times = {}
    for label, overrides in (
        ("direct", {"focal_mode": "direct"}),
        ("path-2hop", {"focal_mode": "path", "focal_max_hops": 2}),
        ("path-4hop", {"focal_mode": "path", "focal_max_hops": 4}),
    ):
        nebula = make_nebula(db, 0.6, **overrides)
        collected = []
        per_annotation = []
        started = time.perf_counter()
        for annotation in annotations:
            focal = annotation.focal(2)
            missing = set(annotation.missing(focal))
            result = nebula.analyze(annotation.text, focal=focal, shared=False)
            margin = _separation(result, missing)
            if margin is not None:
                collected.append(margin)
            per_annotation.append(
                assess(result.candidates, set(annotation.ideal_refs), focal,
                       0.32, 0.86)
            )
        elapsed = (time.perf_counter() - started) / len(annotations)
        margins[label] = sum(collected) / len(collected) if collected else 0.0
        assessments[label] = average_assessments(per_annotation)
        times[label] = elapsed
        rows.append(
            [label, margins[label], assessments[label].f_n,
             assessments[label].f_p, assessments[label].m_f, elapsed * 1e3]
        )
    report(
        "ablation_focal_mode",
        table(["mode", "true_junk_margin", "F_N", "F_P", "M_F", "avg_ms"], rows),
    )

    # The paper's engineering call, quantified: the multi-hop extension
    # buys at most a marginal margin gain over the direct variant...
    assert margins["path-4hop"] - margins["direct"] < 0.05
    # ...and changes the assessment outcome by nothing measurable here.
    assert abs(assessments["path-4hop"].f_p - assessments["direct"].f_p) < 0.02
    assert abs(assessments["path-4hop"].f_n - assessments["direct"].f_n) < 0.05

    nebula = make_nebula(db, 0.6, focal_mode="path", focal_max_hops=4)
    sample = annotations[0]
    benchmark(lambda: nebula.analyze(sample.text, focal=sample.focal(2)))
