"""E13 — Definition 6.1 ablation: ACG stability over the annotation stream.

Replays the database's annotations into an empty ACG in insertion order,
batch by batch, recording the new-edge ratio N/M per batch.  Early
batches discover most of the graph structure (unstable); later batches
mostly re-traverse existing edges (stable) — the maturation the
focal-based spreading search waits for.
"""

import pytest

from repro.core.acg import AnnotationsConnectivityGraph, StabilityTracker

from conftest import make_nebula, report, table

MU = 0.5


@pytest.mark.benchmark(group="acg")
def test_acg_stability_over_stream(benchmark, dataset_large):
    db, _ = dataset_large
    # ~12 batches over the stream, matching the paper's batched Def. 6.1.
    batch_size = max(1, db.manager.store.count_annotations() // 12)

    def replay():
        acg = AnnotationsConnectivityGraph()
        tracker = StabilityTracker(batch_size=batch_size, mu=MU)
        per_annotation = {}
        for annotation_id, ref in db.manager.store.true_attachment_pairs():
            per_annotation.setdefault(annotation_id, []).append(ref)
        for annotation_id in sorted(per_annotation):
            refs = per_annotation[annotation_id]
            new_edges = sum(
                acg.add_attachment(annotation_id, ref) for ref in refs
            )
            tracker.record_annotation(attachments=len(refs), new_edges=new_edges)
        return acg, tracker

    acg, tracker = replay()
    rows = [
        [i + 1, m, n, n / max(1, m), stable]
        for i, (m, n, stable) in enumerate(tracker.history)
    ]
    report(
        "acg_stability",
        table(["batch", "attachments_M", "new_edges_N", "ratio", "stable"], rows),
    )

    ratios = [n / max(1, m) for m, n, _ in tracker.history]
    # The new-edge ratio decays as the graph matures...
    first_quarter = sum(ratios[: len(ratios) // 4]) / max(1, len(ratios) // 4)
    last_quarter = sum(ratios[-(len(ratios) // 4):]) / max(1, len(ratios) // 4)
    assert last_quarter < first_quarter
    # ...and the stream ends stable.
    assert tracker.history[-1][2] is True

    benchmark(replay)
