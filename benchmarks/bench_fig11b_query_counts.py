"""E2 — Figure 11(b): number of generated keyword queries per (ε, L^m).

Paper shape: ε = 0.4 generates far more queries than the ~10 real
embedded references warrant; 0.6 and 0.8 stay close to the reference
count, with 0.8 the tightest.
"""

import pytest

from repro.core.query_generation import generate_queries

from conftest import EPSILONS, SIZE_GROUPS, make_nebula, report, table


@pytest.mark.benchmark(group="fig11b")
def test_fig11b_query_counts(benchmark, dataset_large):
    db, workload = dataset_large
    rows = []
    counts = {}
    for epsilon in EPSILONS:
        nebula = make_nebula(db, epsilon)
        for size in SIZE_GROUPS:
            annotations = workload.group(size)
            produced = [
                len(generate_queries(a.text, nebula.meta, nebula.config).queries)
                for a in annotations
            ]
            references = [len(a.ideal_keywords) for a in annotations]
            counts[(epsilon, size)] = sum(produced) / len(produced)
            rows.append(
                [
                    f"eps={epsilon}",
                    f"L^{size}",
                    sum(produced) / len(produced),
                    sum(references) / len(references),
                ]
            )
    report(
        "fig11b_query_counts",
        table(["config", "set", "avg_queries", "avg_true_refs"], rows),
    )

    # Paper shape assertions: looser cutoff -> at least as many queries.
    for size in SIZE_GROUPS:
        assert counts[(0.4, size)] >= counts[(0.6, size)] >= counts[(0.8, size)]
    # 0.4 over-generates on big annotations relative to 0.8.
    assert counts[(0.4, 1000)] > counts[(0.8, 1000)]

    nebula = make_nebula(db, 0.6)
    sample = workload.group(1000)[0]
    benchmark(generate_queries, sample.text, nebula.meta, nebula.config)
