"""E14 — Figure 9 ablation: the BoundsSetting sweep surface.

Builds the D_Training samples (database annotations distorted to Δ = 1),
sweeps the (β_lower, β_upper) grid, and reports a slice of the surface
plus the chosen setting.

Paper shape: the tuner lands on a genuine two-sided band (the paper's run
chose (0.32, 0.86)) — neither bound degenerate — and the chosen setting
minimizes expert effort within the accuracy limits.  Wider pending bands
trade more manual effort for fewer auto-accept errors.
"""

import pytest

from repro.core.bounds import BoundsSetting

from conftest import make_nebula, report, table, training_samples


@pytest.mark.benchmark(group="bounds")
def test_bounds_tuning_surface(benchmark, dataset_large):
    db, _ = dataset_large
    nebula = make_nebula(db, 0.6)
    samples = training_samples(db, nebula, count=120, delta=1)

    setting = BoundsSetting(fn_limit=0.30, fp_limit=0.10, mh_refinement=False)
    choices = setting.sweep(samples)
    chosen = setting.tune(samples)

    slice_rows = [
        [c.beta_lower, c.beta_upper, c.assessment.f_n, c.assessment.f_p,
         c.assessment.m_f, c.assessment.m_h]
        for c in choices
        if abs(c.beta_lower - round(c.beta_lower / 0.12) * 0.12) < 1e-9
        and abs(c.beta_upper - round(c.beta_upper / 0.12) * 0.12) < 1e-9
    ]
    report(
        "bounds_tuning",
        table(["beta_lower", "beta_upper", "F_N", "F_P", "M_F", "M_H"],
              slice_rows)
        + [
            f"chosen: ({chosen.beta_lower:.2f}, {chosen.beta_upper:.2f}) "
            f"F_N={chosen.assessment.f_n:.3f} F_P={chosen.assessment.f_p:.3f} "
            f"M_F={chosen.assessment.m_f} M_H={chosen.assessment.m_h:.3f}"
        ],
    )

    # The chosen setting satisfies the limits.
    assert chosen.assessment.f_n <= 0.30
    assert chosen.assessment.f_p <= 0.10
    # Paper shape: a real band with a usable upper bound (not forcing all
    # predictions through the experts).
    assert chosen.beta_upper < 1.0
    # Expert effort at the chosen setting is minimal among feasible ones.
    feasible = [
        c for c in choices
        if c.assessment.f_n <= 0.30 and c.assessment.f_p <= 0.10
    ]
    assert chosen.assessment.m_f == min(c.assessment.m_f for c in feasible)

    benchmark(lambda: setting.evaluate(samples, 0.32, 0.86))
