"""E12 — Figure 7: the hop-distance metadata profile guiding K.

Replays the discovery history: for every workload annotation (distorted
to one focal link), the discovered candidates' shortest ACG hop distances
to the focal are recorded in the profile — exactly the update rule of
§6.3.  The resulting histogram drives the automatic selection of K.

Paper shape: a decreasing histogram whose cumulative coverage reaches a
large fraction within 2-3 hops (the paper's example: 71% at K = 2, 93%
at K = 3).
"""

import pytest

from repro.core.acg import HopProfile

from conftest import make_nebula, report, table


@pytest.mark.benchmark(group="fig7")
def test_fig7_profile(benchmark, dataset_large):
    db, workload = dataset_large
    nebula = make_nebula(db, 0.6)

    # The paper's update rule (§6.3): the profile records the tuples of the
    # *predicted True Attachments* — i.e. predictions that get accepted —
    # not every raw candidate.  The oracle plays the acceptance decision.
    profile = HopProfile()
    for annotation in workload.annotations:
        focal = annotation.focal(1)
        ideal = set(annotation.ideal_refs)
        result = nebula.analyze(annotation.text, focal=focal, shared=False)
        for candidate in result.candidates:
            if candidate.ref in focal or candidate.ref not in ideal:
                continue
            profile.record(nebula.acg.shortest_hops(candidate.ref, focal))

    rows = [
        [k, count, coverage]
        for k, count, coverage in profile.as_rows(k_max=6)
    ]
    rows.append(["unreachable", profile.unreachable, ""])
    auto_k = profile.select_k(target_recall=0.90)
    report(
        "fig7_profile",
        table(["hops", "count", "cumulative_coverage"], rows)
        + [f"auto-selected K for 90% coverage: {auto_k}"],
    )

    # Shapes: most candidates are near the focal; coverage grows with K
    # and crosses 90% within a handful of hops.
    assert profile.total > 50
    assert profile.coverage(1) > 0.4
    assert profile.coverage(3) > profile.coverage(1)
    assert 1 <= auto_k <= 6

    sample = workload.group(100)[0]
    focal = sample.focal(1)
    benchmark(lambda: nebula.acg.shortest_hops(sample.ideal_refs[-1], focal))
