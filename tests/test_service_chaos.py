"""Chaos suite: the service under writer stalls, reader outages, and
mid-batch crashes (PR 6 acceptance).

The invariants proved here:

* a saturated (stalled) writer never blocks readers — WAL reads keep
  completing — and admission control rejects instead of buffering
  without bound;
* a mid-batch crash between flush and commit loses nothing that was
  acknowledged and duplicates nothing on restart: recovery rolls the
  unacked batch back and the resubmitted requests land exactly once;
* dead letters captured before a restart are replayed exactly once by
  startup recovery, claim-protected against double ingestion.
"""

import threading
import time

import pytest

from repro import (
    AnnotationService,
    ChaosHarness,
    FaultInjector,
    Nebula,
    NebulaConfig,
    ServiceConfig,
    generate_bio_database,
)
from repro.datagen.biodb import BioDatabaseSpec
from repro.errors import PipelineStageError, ServiceOverloadedError
from repro.observability import MetricsRegistry, set_metrics
from repro.resilience import SimulatedCrash
from repro.storage import get_backend


@pytest.fixture()
def metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


@pytest.fixture()
def file_backend(tmp_path):
    """The chaos suite pins the file engine: WAL concurrent reads are
    the property under test."""
    backend = get_backend("sqlite-file", path=str(tmp_path / "chaos.db"))
    yield backend
    backend.close()


@pytest.fixture()
def faults():
    return FaultInjector()


@pytest.fixture()
def world(file_backend, faults, metrics):
    db = generate_bio_database(
        BioDatabaseSpec(genes=30, proteins=18, publications=100, seed=23),
        backend=file_backend,
    )
    nebula = Nebula(
        file_backend,
        db.meta,
        NebulaConfig(epsilon=0.6, fault_injector=faults),
        aliases=db.aliases,
    )
    yield db, nebula
    nebula.close()


def wait_until(predicate, timeout=10.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestWriterSaturation:
    def test_readers_progress_and_overload_rejects(self, world, faults):
        db, nebula = world
        chaos = ChaosHarness(faults)
        service = AnnotationService(
            nebula,
            ServiceConfig(queue_capacity=4, max_batch=1, flush_interval=0.01),
        ).start()
        baseline = service.annotation_count()
        # Every flush stalls: the writer saturates while work piles up.
        chaos.writer_stall(seconds=0.25, times=-1)
        service.submit(f"stalled note: gene {db.genes[0].gid}")
        assert wait_until(lambda: chaos.fired("service.flush") >= 1)
        # 1) The writer is mid-stall; reads complete anyway, fast.
        started = time.monotonic()
        assert service.annotation_count() == baseline
        assert service.find_annotations("nothing-matches-this") == []
        assert time.monotonic() - started < 0.2
        # 2) Admission control bounds the backlog: fill the queue, then
        #    overflow must reject rather than buffer.
        admitted = 0
        rejected = 0
        for i in range(12):
            try:
                service.submit(f"overflow probe {i}: gene {db.genes[1].gid}")
                admitted += 1
            except ServiceOverloadedError:
                rejected += 1
        assert rejected >= 1
        assert service.stats().queue_depth <= 4
        faults.reset()
        assert service.stop(timeout=30.0) is True
        # Every admitted request was eventually ingested, none lost.
        assert service.stats().ingested == 1 + admitted
        assert service.annotation_count() == baseline + 1 + admitted


class TestReaderOutage:
    def test_read_path_survives_reader_failures(self, world, faults, metrics):
        db, nebula = world
        chaos = ChaosHarness(faults)
        service = AnnotationService(nebula).start()
        service.ingest(f"resilient note: gene {db.genes[0].gid}", timeout=10.0)
        count = service.annotation_count()
        chaos.reader_outage(times=3)
        for _ in range(3):
            assert service.annotation_count() == count
        assert chaos.fired("service.reader") == 3
        assert (
            metrics.counter("nebula_service_reader_fallbacks_total").value >= 3
        )
        service.stop()


class TestMidBatchCrash:
    def test_crash_then_restart_ingests_exactly_once(self, world, faults):
        db, nebula = world
        chaos = ChaosHarness(faults)
        service = AnnotationService(
            nebula, ServiceConfig(max_batch=8, flush_interval=0.01)
        ).start()
        committed = service.ingest(
            f"committed before crash: gene {db.genes[0].gid}", timeout=10.0
        )
        assert committed.annotation_id is not None
        # The next batch dies after flushing, before committing.
        chaos.crash_before_commit()
        doomed = [
            service.submit(f"doomed batch member {i}: gene {db.genes[i].gid}")
            for i in range(3)
        ]
        assert wait_until(lambda: service.crashed is not None)
        assert isinstance(service.crashed, SimulatedCrash)
        assert not service.ready()
        assert service.health()["status"] == "crashed"
        # The crashed batch was never acknowledged.
        assert not any(ticket.done for ticket in doomed)
        assert service.stop() is False

        # --- restart on the same database ---------------------------------
        revived = AnnotationService(
            nebula, ServiceConfig(max_batch=8, flush_interval=0.01)
        ).start()  # recover_on_start rolls the unacked batch back
        # The acknowledged annotation survived the crash...
        assert revived.find_annotations("committed before crash")
        # ...the unacked batch did not (no partial, no ghost rows)...
        assert revived.find_annotations("doomed batch member") == []
        # ...and resubmitting it lands every member exactly once.
        for i in range(3):
            revived.ingest(
                f"doomed batch member {i}: gene {db.genes[i].gid}", timeout=10.0
            )
        rows = revived.find_annotations("doomed batch member", limit=50)
        assert len(rows) == 3
        assert len({content for _, content, _ in rows}) == 3
        assert revived.stop() is True

    def test_recovery_replays_dead_letters_exactly_once(self, world, faults):
        db, nebula = world
        # Capture a dead letter the "previous process" left behind.
        faults.arm("queue.triage", times=1)
        with pytest.raises(PipelineStageError):
            nebula.insert_annotation(
                f"letter to replay: gene {db.genes[0].gid}",
                author="chaos",
            )
        nebula.connection.commit()
        assert len(nebula.dead_letters.pending()) == 1

        service = AnnotationService(nebula).start()
        stats = service.stats()
        assert stats.replayed == 1
        assert service.dead_letter_count() == 0
        rows = service.find_annotations("letter to replay")
        assert len(rows) == 1  # replayed exactly once
        # A second recovery pass finds nothing left to replay.
        assert service.recover() == []
        assert service.find_annotations("letter to replay") == rows
        service.stop()


class TestConcurrentMixedLoad:
    def test_clients_mixing_reads_and_writes_lose_nothing(self, world):
        db, nebula = world
        service = AnnotationService(
            nebula, ServiceConfig(queue_capacity=64, max_batch=8)
        ).start()
        results = {"ok": 0, "rejected": 0, "reads": 0}
        lock = threading.Lock()

        def client(c):
            for i in range(5):
                try:
                    service.ingest(
                        f"mixed client {c} note {i}: "
                        f"gene {db.genes[(c * 5 + i) % len(db.genes)].gid}",
                        timeout=30.0,
                    )
                    with lock:
                        results["ok"] += 1
                except ServiceOverloadedError:
                    with lock:
                        results["rejected"] += 1
                service.find_annotations(f"client {c} note")
                with lock:
                    results["reads"] += 1

        threads = [
            threading.Thread(target=client, args=(c,)) for c in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert service.stop() is True
        assert results["ok"] + results["rejected"] == 30  # nothing lost
        assert results["reads"] == 30
        stats = service.stats()
        assert stats.ingested == results["ok"]
