"""The append-only versioned annotation store (ISSUE 10).

Covers the commit log's lifecycle and history appends, head/log parity
and recovery, the time-travel property (``as_of`` at *every* commit id
reproduces the exact historical state), the migration chain round-trip,
snapshot-consistent service reads, and dead-letter commit stamping.
Backend-parametrized fixtures run everything on both bundled engines.
"""

import random
import threading

import pytest

from repro import Nebula, NebulaConfig, generate_bio_database, get_backend
from repro.annotations.store import AnnotationStore, AttachmentKind
from repro.datagen.biodb import BioDatabaseSpec
from repro.errors import (
    MigrationError,
    UnknownCommitError,
    VersioningError,
)
from repro.observability import MetricsRegistry, set_metrics
from repro.service import AnnotationService, ServiceConfig
from repro.types import CellRef, TupleRef
from repro.versioning import (
    BASELINE_REVISION,
    CommitLog,
    MIGRATIONS,
    MigrationRunner,
    ensure_schema,
    timetravel,
)
from repro.versioning.schema import LEGACY_DDL

from conftest import build_figure1_connection


@pytest.fixture
def store(figure1_connection):
    return AnnotationStore(figure1_connection)


@pytest.fixture
def log(store):
    return store.versioning


@pytest.fixture()
def metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


# ----------------------------------------------------------------------
# Commit lifecycle
# ----------------------------------------------------------------------


class TestCommitLifecycle:
    def test_begin_finish(self, log):
        commit_id = log.begin("ingest", author="alice")
        assert log.active_commit == commit_id
        assert log.finish() == commit_id
        assert log.active_commit is None
        commit = log.get_commit(commit_id)
        assert commit.kind == "ingest"
        assert commit.author == "alice"

    def test_double_begin_rejected(self, log):
        log.begin("ingest")
        with pytest.raises(VersioningError):
            log.begin("batch")
        log.finish()

    def test_unknown_kind_rejected(self, log):
        with pytest.raises(VersioningError):
            log.begin("banana")

    def test_abandon_clears_pointer(self, log):
        log.begin("ingest")
        log.abandon()
        assert log.active_commit is None

    def test_commit_scope_abandons_on_error(self, log):
        with pytest.raises(RuntimeError):
            with log.commit_scope("ingest"):
                raise RuntimeError("boom")
        assert log.active_commit is None

    def test_scope_joins_open_commit(self, log):
        with log.commit_scope("batch") as outer:
            with log.scope("ingest") as joined:
                assert joined == outer
            # Joining must not close the enclosing commit.
            assert log.active_commit == outer
        assert log.active_commit is None
        # The would-be inner kind was never recorded.
        assert [c.kind for c in log.commits()] == ["batch"]

    def test_scope_opens_when_none_active(self, log):
        with log.scope("verify", note="task:1") as commit_id:
            assert log.active_commit == commit_id
        assert log.get_commit(commit_id).note == "task:1"

    def test_head_and_count(self, log):
        assert log.head() is None
        assert log.count_commits() == 0
        first = log.begin("ingest")
        log.finish()
        second = log.begin("ingest")
        log.finish()
        assert second > first
        assert log.head() == second
        assert log.count_commits() == 2

    def test_unknown_commit_raises(self, log):
        with pytest.raises(UnknownCommitError):
            log.get_commit(999)

    def test_commits_newest_first_with_limit(self, log):
        for _ in range(3):
            log.begin("ingest")
            log.finish()
        listed = log.commits(limit=2)
        assert len(listed) == 2
        assert listed[0].commit_id > listed[1].commit_id

    def test_commit_counter_incremented(self, log, metrics):
        log.begin("ingest")
        log.finish()
        key = 'nebula_commits_total{kind="ingest"}'
        assert metrics.snapshot()["counters"][key] == 1


# ----------------------------------------------------------------------
# History appends through the store
# ----------------------------------------------------------------------


def _history_ops(connection, annotation_id):
    return [
        (row[1], row[2])  # (commit_id, op)
        for row in timetravel.annotation_history_rows(connection, annotation_id)
    ]


class TestHistoryAppends:
    def test_direct_store_use_gets_auto_commits(self, store, log):
        annotation = store.insert_annotation("standalone", author="z")
        assert log.head() is not None
        commit = log.get_commit(log.head())
        assert commit.kind == "auto"
        ops = _history_ops(store.connection, annotation.annotation_id)
        assert [op for _, op in ops] == ["insert"]

    def test_attach_promote_detach_logged(self, store, log):
        annotation = store.insert_annotation("edges")
        edge = store.attach(
            annotation.annotation_id,
            CellRef("Gene", 1),
            confidence=0.7,
            kind=AttachmentKind.PREDICTED,
        )
        store.promote(edge.attachment_id)
        assert store.detach(edge.attachment_id)
        rows = timetravel.attachment_history_rows(
            store.connection, annotation.annotation_id
        )
        assert [str(r[2]) for r in rows] == ["insert", "update", "delete"]
        # The tombstone preserves the final column values for the audit.
        assert rows[-1][4] == "Gene"
        assert float(rows[-1][8]) == 1.0

    def test_promote_missing_edge_returns_false(self, log):
        assert log.promote_attachment(12345) is False

    def test_delete_missing_edge_returns_false(self, log):
        assert log.delete_attachment(12345) is False

    def test_scoped_mutations_share_one_commit(self, store, log):
        with log.commit_scope("batch") as commit_id:
            a = store.insert_annotation("one")
            b = store.insert_annotation("two")
            store.attach(a.annotation_id, CellRef("Gene", 2))
        for annotation_id in (a.annotation_id, b.annotation_id):
            assert _history_ops(store.connection, annotation_id) == [
                (commit_id, "insert")
            ]


# ----------------------------------------------------------------------
# Head/log parity and recovery
# ----------------------------------------------------------------------


class TestHeadParity:
    def test_healthy_store_verifies(self, store, log):
        a = store.insert_annotation("healthy")
        store.attach(a.annotation_id, CellRef("Gene", 1))
        assert log.verify_head() is True

    def test_corrupted_head_detected_and_restored(self, store, log):
        a = store.insert_annotation("victim", author="v")
        store.attach(a.annotation_id, CellRef("Gene", 3))
        expected = timetravel.head_fingerprint(store.connection)
        # Simulate torn state: the head loses rows the log still holds.
        store.connection.execute("DELETE FROM _nebula_attachments")
        store.connection.execute("DELETE FROM _nebula_annotations")
        assert log.verify_head() is False
        log.restore_head()
        assert log.verify_head() is True
        assert timetravel.head_fingerprint(store.connection) == expected

    def test_restore_respects_tombstones(self, store, log):
        a = store.insert_annotation("kept")
        edge = store.attach(a.annotation_id, CellRef("Gene", 1))
        store.detach(edge.attachment_id)
        log.restore_head()
        assert store.count_attachments() == 0
        assert store.count_annotations() == 1


# ----------------------------------------------------------------------
# Time travel: the core property
# ----------------------------------------------------------------------


class TestTimeTravel:
    def test_as_of_reads_pin_history(self, store, log):
        first = store.insert_annotation("v1", author="a")
        pin = log.head()
        store.attach(first.annotation_id, CellRef("Gene", 1))
        second = store.insert_annotation("v2")
        # Pinned reads see exactly the pre-attachment world.
        assert timetravel.count_annotations(store.connection, pin) == 1
        assert timetravel.attachments_of_rows(
            store.connection, first.annotation_id, pin
        ) == []
        row = timetravel.get_annotation_row(
            store.connection, first.annotation_id, pin
        )
        assert row[1] == "v1"
        assert (
            timetravel.get_annotation_row(
                store.connection, second.annotation_id, pin
            )
            is None
        )

    def test_every_commit_reproduces_historical_state(self, store, log):
        """The acceptance property: ``as_of=<every commit id>`` exactly
        reproduces the state captured right after that commit, under a
        randomized mutation sequence (both engines via the fixture)."""
        rng = random.Random(1234)
        edges = []
        annotations = []
        captured = {}  # commit id -> head fingerprint at that moment

        def checkpoint():
            captured[log.head()] = timetravel.head_fingerprint(store.connection)

        for step in range(60):
            op = rng.random()
            if op < 0.45 or not annotations:
                a = store.insert_annotation(f"note {step}", author=f"u{step % 3}")
                annotations.append(a.annotation_id)
            elif op < 0.75:
                kind = (
                    AttachmentKind.TRUE if rng.random() < 0.5
                    else AttachmentKind.PREDICTED
                )
                confidence = 1.0 if kind is AttachmentKind.TRUE else rng.uniform(0.1, 0.9)
                edge = store.attach(
                    rng.choice(annotations),
                    CellRef("Gene", rng.randint(1, 7)),
                    confidence=confidence,
                    kind=kind,
                )
                edges.append(edge.attachment_id)
            elif op < 0.9 and edges:
                store.promote(rng.choice(edges))
            elif edges:
                victim = rng.choice(edges)
                store.detach(victim)
                edges.remove(victim)
            checkpoint()

        assert len(captured) >= 50
        # Every commit ever made is represented (auto commits: 1 per op).
        all_commits = {c.commit_id for c in log.commits()}
        assert set(captured) <= all_commits
        for commit_id, expected in captured.items():
            assert (
                timetravel.state_fingerprint(store.connection, as_of=commit_id)
                == expected
            ), f"as_of={commit_id} diverged from the captured state"
        # And the log still agrees with the final head.
        assert log.verify_head() is True

    def test_engine_pipeline_commits_reproduce_history(self, figure1_db):
        """Same property through the full pipeline: ingest + verify +
        reject command sequences, one commit per logical operation."""
        connection, meta = figure1_db
        nebula = Nebula(connection, meta, NebulaConfig(epsilon=0.6))
        rng = random.Random(77)
        captured = {}
        texts = [
            "gene JW0013 interacts with JW0014",
            "the protein G-Actin binds JW0019",
            "family F1 genes look unstable",
            "JW0015 and JW0018 show coupling",
            "B-Tubulin kinase saturates",
        ]
        for step in range(12):
            report = nebula.insert_annotation(
                rng.choice(texts),
                attach_to=[TupleRef("Gene", rng.randint(1, 7))],
                author=f"expert{step % 2}",
            )
            assert report.commit_id is not None
            captured[report.commit_id] = timetravel.head_fingerprint(connection)
            tasks = nebula.pending_tasks()
            if tasks and rng.random() < 0.5:
                task = tasks[0]
                if rng.random() < 0.5:
                    nebula.verify_attachment(task.task_id)
                else:
                    nebula.reject_attachment(task.task_id)
                captured[nebula.head_commit()] = timetravel.head_fingerprint(
                    connection
                )
        kinds = {c.kind for c in nebula.commit_log.commits()}
        assert "ingest" in kinds
        for commit_id, expected in captured.items():
            assert (
                timetravel.state_fingerprint(connection, as_of=commit_id)
                == expected
            )

    def test_report_commit_ids_are_monotonic(self, figure1_db):
        connection, meta = figure1_db
        nebula = Nebula(connection, meta, NebulaConfig(epsilon=0.6))
        ids = [
            nebula.insert_annotation(f"gene JW001{i} note").commit_id
            for i in range(3)
        ]
        assert ids == sorted(ids)
        assert nebula.head_commit() == ids[-1]

    def test_batch_shares_one_commit(self, figure1_db):
        from repro.perf import AnnotationRequest

        connection, meta = figure1_db
        nebula = Nebula(connection, meta, NebulaConfig(epsilon=0.6))
        reports = nebula.insert_annotations(
            [
                AnnotationRequest.build("gene JW0013 note"),
                AnnotationRequest.build("gene JW0019 note"),
            ],
            request_id="batch-7",
        )
        assert len({r.commit_id for r in reports}) == 1
        commit = nebula.commit_log.get_commit(reports[0].commit_id)
        assert commit.kind == "batch"
        assert commit.request_id == "batch-7"
        assert commit.note == "batch of 2"


# ----------------------------------------------------------------------
# Migrations
# ----------------------------------------------------------------------


def _schema_objects(connection):
    return {
        (str(r[0]), str(r[1]))
        for r in connection.execute(
            "SELECT type, name FROM sqlite_master "
            "WHERE type IN ('table', 'view', 'index') "
            "AND name NOT LIKE 'sqlite_%'"
        ).fetchall()
        if str(r[1]).startswith("_nebula")
    }


def _seed_legacy(connection):
    connection.executescript(LEGACY_DDL)
    connection.executemany(
        "INSERT INTO _nebula_annotations VALUES (?, ?, ?, ?)",
        [(1, "old one", "ann", 1), (2, "old two", None, 2)],
    )
    connection.executemany(
        "INSERT INTO _nebula_attachments (annotation_id, target_table, "
        "target_rowid, target_rowid_hi, target_column, confidence, kind) "
        "VALUES (?, ?, ?, ?, ?, ?, ?)",
        [
            (1, "Gene", 1, None, None, 1.0, "true"),
            (2, "Gene", 3, None, None, 0.7, "predicted"),
        ],
    )


class TestMigrations:
    def test_fresh_database_gets_full_chain(self, storage_backend):
        connection = storage_backend.primary
        ensure_schema(connection)
        runner = MigrationRunner(connection)
        assert runner.pending() == []
        assert runner.current_revision() == MIGRATIONS[-1].revision

    def test_legacy_database_is_baseline_stamped(self, storage_backend):
        connection = storage_backend.primary
        _seed_legacy(connection)
        runner = MigrationRunner(connection)
        assert runner.current_revision() == BASELINE_REVISION
        assert [m.revision for m in runner.pending()] == ["0002", "0003"]

    def test_upgrade_backfills_history(self, storage_backend):
        connection = storage_backend.primary
        _seed_legacy(connection)
        runner = MigrationRunner(connection)
        applied = runner.upgrade()
        assert applied == ["0002", "0003"]
        log = CommitLog(connection)
        # One migrate commit holds the backfill of every pre-existing row.
        commits = log.commits()
        assert [c.kind for c in commits] == ["migrate"]
        assert log.verify_head() is True
        assert timetravel.count_annotations(connection, commits[0].commit_id) == 2

    def test_upgraded_legacy_matches_fresh_init(self):
        with get_backend("sqlite-memory") as legacy_backend:
            legacy = legacy_backend.primary
            _seed_legacy(legacy)
            MigrationRunner(legacy).upgrade()
            with get_backend("sqlite-memory") as fresh_backend:
                fresh = fresh_backend.primary
                # Fresh init + the same logical content, logged manually.
                ensure_schema(fresh)
                fresh.executemany(
                    "INSERT INTO _nebula_annotations VALUES (?, ?, ?, ?)",
                    [(1, "old one", "ann", 1), (2, "old two", None, 2)],
                )
                fresh.executemany(
                    "INSERT INTO _nebula_attachments (annotation_id, "
                    "target_table, target_rowid, target_rowid_hi, "
                    "target_column, confidence, kind) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)",
                    [
                        (1, "Gene", 1, None, None, 1.0, "true"),
                        (2, "Gene", 3, None, None, 0.7, "predicted"),
                    ],
                )
                log = CommitLog(fresh)
                with log.commit_scope("migrate", note="test backfill"):
                    log.record_annotation_range(1, 2)
                    log.record_attachments_above(0)
                # Identical schema objects and identical logical content.
                assert _schema_objects(legacy) == _schema_objects(fresh)
                assert timetravel.state_fingerprint(
                    legacy
                ) == timetravel.state_fingerprint(fresh)
                assert timetravel.head_fingerprint(
                    legacy
                ) == timetravel.head_fingerprint(fresh)

    def test_downgrade_restores_legacy_schema(self, storage_backend):
        connection = storage_backend.primary
        _seed_legacy(connection)
        runner = MigrationRunner(connection)
        runner.upgrade()
        reverted = runner.downgrade()
        assert reverted == ["0003", "0002"]
        assert runner.current_revision() == BASELINE_REVISION
        names = {name for _, name in _schema_objects(connection)}
        assert "_nebula_commits" not in names
        assert "_nebula_annotation_history" not in names
        assert "_nebula_annotations_current" not in names
        # The materialized head (the latest state) survives the downgrade.
        count = connection.execute(
            "SELECT COUNT(*) FROM _nebula_annotations"
        ).fetchone()[0]
        assert int(count) == 2

    def test_roundtrip_up_down_up(self, storage_backend):
        connection = storage_backend.primary
        _seed_legacy(connection)
        runner = MigrationRunner(connection)
        runner.upgrade()
        before = timetravel.head_fingerprint(connection)
        runner.downgrade()
        runner.upgrade()
        assert timetravel.head_fingerprint(connection) == before
        assert CommitLog(connection).verify_head() is True

    def test_partial_upgrade_with_target(self, storage_backend):
        connection = storage_backend.primary
        _seed_legacy(connection)
        runner = MigrationRunner(connection)
        assert runner.upgrade(target="0002") == ["0002"]
        assert runner.current_revision() == "0002"
        assert [m.revision for m in runner.pending()] == ["0003"]

    def test_unordered_chain_rejected(self, storage_backend):
        connection = storage_backend.primary
        with pytest.raises(MigrationError):
            MigrationRunner(
                connection, migrations=list(reversed(MIGRATIONS))
            )

    def test_store_init_auto_migrates_legacy(self, storage_backend):
        connection = storage_backend.primary
        _seed_legacy(connection)
        store = AnnotationStore(connection)
        assert store.versioning.verify_head() is True
        assert store.count_annotations() == 2
        # Pre-existing rows are reachable through time travel at the
        # backfill commit.
        head = store.versioning.head()
        assert timetravel.count_annotations(connection, head) == 2


# ----------------------------------------------------------------------
# Snapshot-consistent service reads (satellite 3)
# ----------------------------------------------------------------------


class TestSnapshotConsistency:
    def test_pinned_readers_see_identical_results_under_writes(
        self, storage_backend, metrics
    ):
        db = generate_bio_database(
            BioDatabaseSpec(genes=24, proteins=12, publications=60, seed=5),
            backend=storage_backend,
        )
        nebula = Nebula(
            storage_backend, db.meta, NebulaConfig(epsilon=0.6), aliases=db.aliases
        )
        gene = db.genes[0]
        with AnnotationService(
            nebula, ServiceConfig(queue_capacity=32, max_batch=8, flush_interval=0.01)
        ) as service:
            service.ingest(
                f"seed note about gene {gene.gid}",
                attach_to=[db.resolve("gene", gene.gid)],
            )
            pin = service.head_commit()
            assert pin is not None
            baseline_find = service.find_annotations("gene", as_of=pin)
            baseline_pending = service.pending_verifications(as_of=pin)

            stop = threading.Event()
            divergences = []

            def reader():
                while not stop.is_set():
                    if service.find_annotations("gene", as_of=pin) != baseline_find:
                        divergences.append("find")
                        return
                    if (
                        service.pending_verifications(as_of=pin)
                        != baseline_pending
                    ):
                        divergences.append("pending")
                        return

            thread = threading.Thread(target=reader)
            thread.start()
            try:
                # The writer commits new batches while the reader spins.
                for i in range(6):
                    service.ingest(
                        f"concurrent note {i} gene {db.genes[i + 1].gid}",
                        attach_to=[db.resolve("gene", db.genes[i + 1].gid)],
                    )
            finally:
                stop.set()
                thread.join(timeout=10)
            assert divergences == []
            # Head reads do observe the new writes; the pin does not.
            assert service.head_commit() > pin
            assert len(service.find_annotations("concurrent note")) == 6
            assert service.find_annotations("concurrent note", as_of=pin) == []

    def test_recover_restores_head_from_log(self, storage_backend, metrics):
        db = generate_bio_database(
            BioDatabaseSpec(genes=20, proteins=10, publications=40, seed=9),
            backend=storage_backend,
        )
        nebula = Nebula(
            storage_backend, db.meta, NebulaConfig(epsilon=0.6), aliases=db.aliases
        )
        report = nebula.insert_annotation(
            f"recoverable note gene {db.genes[0].gid}"
        )
        nebula.connection.commit()
        # Tear the head behind the service's back; the log keeps the truth.
        nebula.connection.execute("DELETE FROM _nebula_annotations")
        nebula.connection.commit()
        service = AnnotationService(nebula, ServiceConfig())
        try:
            service.recover()
            row = nebula.connection.execute(
                "SELECT content FROM _nebula_annotations WHERE annotation_id = ?",
                (report.annotation_id,),
            ).fetchone()
            assert row is not None and "recoverable" in row[0]
            assert nebula.commit_log.verify_head() is True
            key = "nebula_head_restores_total"
            assert metrics.snapshot()["counters"].get(key) == 1
        finally:
            service.stop()


# ----------------------------------------------------------------------
# Dead-letter commit stamping (satellite 1)
# ----------------------------------------------------------------------


class TestDeadLetterStamping:
    def test_replay_stamps_commit_onto_letter(self, metrics):
        from repro.resilience import FaultInjector

        faults = FaultInjector()
        db = generate_bio_database(
            BioDatabaseSpec(genes=24, proteins=12, publications=60, seed=11)
        )
        nebula = Nebula(
            db.connection,
            db.meta,
            NebulaConfig(epsilon=0.6, fault_injector=faults),
            aliases=db.aliases,
        )
        from repro.errors import PipelineStageError

        faults.arm("queue.triage")
        with pytest.raises(PipelineStageError):
            nebula.insert_annotation(
                f"doomed note gene {db.genes[0].gid}",
                attach_to=[db.resolve("gene", db.genes[0].gid)],
            )
        (letter,) = nebula.dead_letters.pending()
        assert letter.commit_id is None

        (report,) = nebula.reprocess_dead_letters()
        resolved = nebula.dead_letters.get(letter.letter_id)
        assert resolved.status == "resolved"
        # The letter names the commit its replay produced...
        assert resolved.commit_id == report.commit_id
        commit = nebula.commit_log.get_commit(report.commit_id)
        # ...and the commit names the letter back: a bidirectional audit.
        assert commit.kind == "replay"
        assert commit.note == f"dead-letter:{letter.letter_id}"
