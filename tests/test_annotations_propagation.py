"""Unit tests for annotation propagation onto query answers."""

import pytest

from repro.annotations.engine import AnnotationManager
from repro.annotations.propagation import propagate
from repro.types import CellRef, TupleRef

from conftest import build_figure1_connection


@pytest.fixture
def world():
    connection = build_figure1_connection()
    manager = AnnotationManager(connection)
    row_note = manager.add_annotation("row note", attach_to=[CellRef("Gene", 1)])
    cell_note = manager.add_annotation(
        "cell note", attach_to=[CellRef("Gene", 1, "Name")]
    )
    column_note = manager.add_annotation(
        "column note", attach_to=[CellRef("Gene", None, "Family")]
    )
    return connection, manager, row_note, cell_note, column_note


class TestPropagate:
    def test_row_gets_applicable_annotations(self, world):
        connection, *_ = world
        rows = propagate(connection, "Gene", where="GID = ?", parameters=("JW0013",))
        assert len(rows) == 1
        contents = {text for text, _ in rows[0].annotations}
        assert contents == {"row note", "cell note", "column note"}

    def test_other_rows_get_only_column_level(self, world):
        connection, *_ = world
        rows = propagate(connection, "Gene", where="GID = ?", parameters=("JW0014",))
        contents = {text for text, _ in rows[0].annotations}
        assert contents == {"column note"}

    def test_projection_filters_cell_annotations(self, world):
        connection, *_ = world
        rows = propagate(
            connection, "Gene", columns=["GID", "Length"],
            where="GID = ?", parameters=("JW0013",),
        )
        contents = {text for text, _ in rows[0].annotations}
        # The cell note on Name and column note on Family fall outside the
        # projection; the row-level note always applies.
        assert contents == {"row note"}

    def test_values_match_projection(self, world):
        connection, *_ = world
        rows = propagate(
            connection, "Gene", columns=["Name"], where="GID = ?", parameters=("JW0013",)
        )
        assert rows[0].values == ("grpC",)
        assert rows[0].ref == TupleRef("Gene", 1)

    def test_empty_answer(self, world):
        connection, *_ = world
        assert propagate(connection, "Gene", where="GID = 'NOPE'") == []

    def test_full_table_scan(self, world):
        connection, *_ = world
        rows = propagate(connection, "Gene")
        assert len(rows) == 7
        # Every row sees the column-level note under a * projection.
        assert all(
            "column note" in {text for text, _ in row.annotations} for row in rows
        )

    def test_predicted_excluded_by_default(self, world):
        connection, manager, row_note, *_ = world
        manager.attach_predicted(row_note.annotation_id, CellRef("Gene", 2), 0.6)
        rows = propagate(connection, "Gene", where="GID = ?", parameters=("JW0014",))
        contents = {text for text, _ in rows[0].annotations}
        assert "row note" not in contents
        shown = propagate(
            connection, "Gene", where="GID = ?", parameters=("JW0014",),
            include_predicted=True,
        )
        assert "row note" in {text for text, _ in shown[0].annotations}
