"""Focused tests for SQL generation edge cases."""

import sqlite3

import pytest

from repro.meta.lexicon import DEFAULT_LEXICON
from repro.search.configurations import enumerate_configurations
from repro.search.engine import KeywordQuery, KeywordSearchEngine, SearchScope
from repro.search.sqlgen import Condition, generate_sql
from repro.types import TupleRef

from conftest import build_figure1_connection

SEARCHABLE = [("Gene", "GID"), ("Gene", "Name"), ("Protein", "PID"),
              ("Protein", "PName"), ("Protein", "PType")]


@pytest.fixture
def engine():
    return KeywordSearchEngine(
        build_figure1_connection(),
        searchable_columns=SEARCHABLE,
        aliases={"genes": ("Gene", None)},
        lexicon=DEFAULT_LEXICON,
    )


def _config_for(engine, keywords):
    mappings = engine.mapper.map_query(list(keywords))
    configs = enumerate_configurations(mappings, engine.schema)
    assert configs, f"no configuration for {keywords}"
    return configs[0]


class TestTableSubstitution:
    def test_target_table_substituted(self, engine):
        config = _config_for(engine, ["JW0013"])
        (query,) = generate_sql(
            config, engine.schema, table_map={"gene": "_minidb_Gene"}
        )
        assert "FROM _minidb_Gene t0" in query.sql
        # The logical target table name is preserved for result mapping.
        assert query.target_table == "Gene"

    def test_substituted_target_gets_no_scope_fragment(self, engine):
        config = _config_for(engine, ["JW0013"])
        (query,) = generate_sql(
            config,
            engine.schema,
            scope_filter={"gene": "rowid IN (1)"},
            table_map={"gene": "_minidb_Gene"},
        )
        assert "rowid IN (1)" not in query.sql

    def test_unsubstituted_target_keeps_scope_fragment(self, engine):
        config = _config_for(engine, ["JW0013"])
        (query,) = generate_sql(
            config, engine.schema, scope_filter={"gene": "rowid IN (1, 2)"}
        )
        assert "rowid IN (1, 2)" in query.sql

    def test_join_tables_substituted(self, engine):
        config = next(
            c
            for c in enumerate_configurations(
                engine.mapper.map_query(["grpC", "G-Actin"]), engine.schema
            )
            if {v.table for v in c.value_mappings} == {"Gene", "Protein"}
        )
        queries = generate_sql(
            config, engine.schema,
            table_map={"gene": "_minidb_Gene", "protein": "_minidb_Protein"},
        )
        for query in queries:
            assert "_minidb_" in query.sql
            assert " Gene " not in query.sql and " Protein " not in query.sql


class TestConditionSemantics:
    def test_same_table_conditions_conjoined(self, engine):
        # JW0013 and grpC are both Gene values: one query, two ANDed
        # conditions, matching exactly the row satisfying both.
        config = next(
            c
            for c in enumerate_configurations(
                engine.mapper.map_query(["JW0013", "grpC"]), engine.schema
            )
            if len(c.value_mappings) == 2
        )
        (query,) = generate_sql(config, engine.schema)
        assert query.sql.count("COLLATE NOCASE") == 2
        rowids = engine.execute_sql(query)
        assert rowids == [1]

    def test_conditions_recorded_structurally(self, engine):
        config = _config_for(engine, ["JW0013"])
        (query,) = generate_sql(config, engine.schema)
        assert query.conditions == (Condition("Gene", "GID", "JW0013"),)

    def test_mismatched_pair_returns_nothing(self, engine):
        # JW0013's name is grpC, not yaaB: the conjunction must be empty.
        config = next(
            c
            for c in enumerate_configurations(
                engine.mapper.map_query(["JW0013", "yaaB"]), engine.schema
            )
            if len(c.value_mappings) == 2
        )
        queries = generate_sql(config, engine.schema)
        for query in queries:
            assert engine.execute_sql(query) == []


class TestUnreachableConditions:
    def test_dropped_condition_halves_confidence(self):
        connection = sqlite3.connect(":memory:")
        connection.executescript(
            """
            CREATE TABLE A (name TEXT);
            CREATE TABLE B (name TEXT);
            INSERT INTO A VALUES ('alpha');
            INSERT INTO B VALUES ('beta');
            """
        )
        engine = KeywordSearchEngine(
            connection, searchable_columns=[("A", "name"), ("B", "name")]
        )
        mappings = engine.mapper.map_query(["alpha", "beta"])
        config = next(
            c
            for c in enumerate_configurations(mappings, engine.schema)
            if len(c.value_mappings) == 2
        )
        queries = generate_sql(config, engine.schema)
        # A and B are unconnected: each target query drops the other
        # table's condition and pays a 50% confidence penalty.
        assert len(queries) == 2
        for query in queries:
            assert query.confidence == pytest.approx(config.score * 0.5)
            assert len(query.conditions) == 1


class TestSignatures:
    def test_signature_ignores_sql_text(self, engine):
        config = _config_for(engine, ["JW0013"])
        (plain,) = generate_sql(config, engine.schema)
        (scoped,) = generate_sql(
            config, engine.schema, scope_filter={"gene": "rowid IN (1)"}
        )
        # Same logical probe: identical signature despite different SQL.
        assert plain.signature == scoped.signature

    def test_single_local_condition_flag_negative(self, engine):
        config = next(
            c
            for c in enumerate_configurations(
                engine.mapper.map_query(["JW0013", "grpC"]), engine.schema
            )
            if len(c.value_mappings) == 2
        )
        (query,) = generate_sql(config, engine.schema)
        assert not query.is_single_local_condition
