"""Equivalence properties of the ingestion fast paths.

The tentpole optimizations — batched ingestion with cross-annotation
shared execution, the versioned analysis cache, and the parallel Stage-2
executor — are pure *speed* changes: the paper's sharing techniques
"produce the same number of output tuples" (Fig. 13), and this module
pins that contract down as executable properties.  Every test compares a
fast path against the plain sequential path on identically generated
worlds and requires byte-identical reports (candidates, confidences,
provenance, triage decisions) and identical logical database state.

Only surrogate ``attachment_id`` numbering may differ between the paths
(Stage-0 bulk writes all focal edges before any predicted edge, where
sequential ingestion interleaves them), so database state is compared on
attachment *content*, not ids.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro import (
    BioDatabaseSpec,
    Nebula,
    NebulaConfig,
    generate_bio_database,
)
from repro.core.shared_execution import SharedExecutor
from repro.datagen.workload import WorkloadSpec, generate_workload
from repro.errors import PipelineStageError
from repro.perf import AnnotationRequest
from repro.resilience.degradation import EXECUTOR_FALLBACK
from repro.resilience.faults import FaultInjector
from repro.search.engine import KeywordQuery, SearchScope
from repro.types import TupleRef

SPEC = BioDatabaseSpec(genes=60, proteins=36, publications=240, seed=11)
WORKLOAD = WorkloadSpec(seed=61)


def fresh_world(config=None, connection=None):
    """A generated database plus an engine — deterministic per SPEC."""
    db = generate_bio_database(SPEC, connection=connection)
    nebula = Nebula(
        db.connection,
        db.meta,
        config or NebulaConfig(epsilon=0.6),
        aliases=db.aliases,
    )
    return db, nebula


def sample_requests(db, count=10):
    workload = generate_workload(db, WORKLOAD)
    return [
        AnnotationRequest.build(a.text, a.focal(1))
        for a in workload.annotations[:count]
    ]


def report_key(report):
    """Everything observable about one ingestion, minus wall-clock."""
    return (
        report.annotation_id,
        report.mode,
        tuple(q.keywords for q in report.generation.queries),
        tuple(
            (c.ref, round(c.confidence, 12), c.provenance)
            for c in report.candidates
        ),
        tuple(
            (t.task_id, t.ref, round(t.confidence, 12), t.decision.value, t.evidence)
            for t in report.tasks
        ),
        report.spam_verdict.is_spam if report.spam_verdict is not None else None,
    )


def annotation_rows(connection):
    return connection.execute(
        "SELECT annotation_id, content, author FROM _nebula_annotations "
        "ORDER BY annotation_id"
    ).fetchall()


def attachment_content(connection):
    """Attachment edges modulo the surrogate ``attachment_id``."""
    return sorted(
        tuple(row)
        for row in connection.execute(
            "SELECT annotation_id, target_table, target_rowid, target_rowid_hi, "
            "target_column, confidence, kind FROM _nebula_attachments"
        )
    )


def world_state(nebula):
    return {
        "annotations": annotation_rows(nebula.connection),
        "attachments": attachment_content(nebula.connection),
        "acg_edges": nebula.acg.edge_count,
        "acg_nodes": nebula.acg.node_count,
        "pending": [t.task_id for t in nebula.pending_tasks()],
    }


# ----------------------------------------------------------------------
# Batched vs sequential ingestion
# ----------------------------------------------------------------------


class TestBatchEquivalence:
    def test_batch_matches_sequential(self):
        _, sequential = fresh_world()
        db2, batched = fresh_world()
        requests = sample_requests(db2)

        seq_reports = [
            sequential.insert_annotation(
                r.text, attach_to=r.focal, author=r.author
            )
            for r in requests
        ]
        batch_reports = batched.insert_annotations(requests)

        assert [report_key(r) for r in batch_reports] == [
            report_key(r) for r in seq_reports
        ]
        assert world_state(batched) == world_state(sequential)
        # The pooled pass actually shared work across annotations.
        assert batched.executor.last_stats.saved_statements > 0

    def test_single_member_batch_matches_insert(self):
        _, sequential = fresh_world()
        db2, batched = fresh_world()
        (request,) = sample_requests(db2, count=1)

        seq_report = sequential.insert_annotation(request.text, attach_to=request.focal)
        (batch_report,) = batched.insert_annotations([request])

        assert report_key(batch_report) == report_key(seq_report)
        assert world_state(batched) == world_state(sequential)

    def test_empty_batch_is_a_noop(self, bio_nebula):
        before = bio_nebula.manager.store.count_annotations()
        assert bio_nebula.insert_annotations([]) == []
        assert bio_nebula.manager.store.count_annotations() == before

    def test_bare_strings_are_accepted(self, bio_nebula):
        (report,) = bio_nebula.insert_annotations(["a note about nothing much"])
        assert report.annotation_id is not None
        assert report.focal == ()

    def test_batch_matches_sequential_with_spreading(self):
        _, sequential = fresh_world()
        db2, batched = fresh_world()
        requests = sample_requests(db2, count=6)

        seq_reports = [
            sequential.insert_annotation(
                r.text, attach_to=r.focal, use_spreading=True, radius=2
            )
            for r in requests
        ]
        batch_reports = batched.insert_annotations(
            requests, use_spreading=True, radius=2
        )

        assert all(r.mode == "spreading" for r in batch_reports)
        assert [report_key(r) for r in batch_reports] == [
            report_key(r) for r in seq_reports
        ]
        assert world_state(batched) == world_state(sequential)


# ----------------------------------------------------------------------
# Shared execution under a scope / executor fallback
# ----------------------------------------------------------------------


class TestSharedExecutionEquivalence:
    def queries(self):
        return [
            KeywordQuery(("gene", "JW0013"), label="q1"),
            KeywordQuery(("gene", "JW0014"), label="q2"),
            KeywordQuery(("protein", "Ligase42"), label="q3"),
            KeywordQuery(("family", "F1"), label="q4"),
        ]

    def test_scoped_group_matches_isolated_search(self, figure1_db):
        connection, meta = figure1_db
        nebula = Nebula(connection, meta, NebulaConfig(epsilon=0.6))
        scope = SearchScope.from_refs(
            [TupleRef("Gene", rowid) for rowid in (1, 2, 3)]
            + [TupleRef("Protein", 2)]
        )
        executor = SharedExecutor(nebula.engine)
        shared = executor.search_all(self.queries(), scope)
        for query in self.queries():
            isolated = nebula.engine.search(query, scope)
            assert shared[query.describe()].tuples == isolated.tuples

    def test_unscoped_group_matches_isolated_search(self, bio_nebula):
        queries = self.queries()
        executor = SharedExecutor(bio_nebula.engine)
        shared = executor.search_all(queries)
        for query in queries:
            assert shared[query.describe()].tuples == bio_nebula.engine.search(query).tuples

    def test_executor_fault_falls_back_with_identical_results(self):
        _, clean = fresh_world()
        faults = FaultInjector()
        db2, degraded = fresh_world(
            NebulaConfig(epsilon=0.6, fault_injector=faults)
        )
        requests = sample_requests(db2, count=4)

        clean_reports = clean.insert_annotations(requests)
        faults.arm("executor.run")
        degraded_reports = degraded.insert_annotations(requests)

        assert all(EXECUTOR_FALLBACK in r.degradations for r in degraded_reports)
        stripped = [report_key(r) for r in degraded_reports]
        assert stripped == [report_key(r) for r in clean_reports]
        assert world_state(degraded) == world_state(clean)


# ----------------------------------------------------------------------
# Parallel Stage-2
# ----------------------------------------------------------------------


class TestParallelEquivalence:
    def test_parallel_file_db_matches_sequential(self, tmp_path):
        worlds = {}
        for name, workers in (("seq", 0), ("par", 4)):
            connection = sqlite3.connect(str(tmp_path / f"{name}.db"))
            db, nebula = fresh_world(
                NebulaConfig(epsilon=0.6, executor_workers=workers),
                connection=connection,
            )
            connection.commit()  # user data must be visible to ro workers
            worlds[name] = (db, nebula)

        _, sequential = worlds["seq"]
        db2, parallel = worlds["par"]
        assert parallel.parallel is not None and parallel.parallel.available

        requests = sample_requests(db2, count=8)
        try:
            seq_reports = sequential.insert_annotations(requests)
            par_reports = parallel.insert_annotations(requests)
            assert parallel.executor.last_stats.parallel_statements > 0
            assert [report_key(r) for r in par_reports] == [
                report_key(r) for r in seq_reports
            ]
            assert world_state(parallel) == world_state(sequential)
        finally:
            sequential.close()
            parallel.close()
            sequential.connection.close()
            parallel.connection.close()

    def test_in_memory_db_never_builds_a_pool(self):
        # A *private* in-memory database (not the shared-cache backend)
        # is visible only to its own connection: the engine must fall
        # back to sequential execution, silently.  Built locally because
        # ``bio_db`` may be file- or shared-cache-backed under
        # NEBULA_BACKEND.
        db = generate_bio_database(SPEC)
        nebula = Nebula(
            db.connection,
            db.meta,
            NebulaConfig(epsilon=0.6, executor_workers=4),
            aliases=db.aliases,
        )
        assert nebula.parallel is None
        nebula.close()  # no-op, must not raise
        db.connection.close()


# ----------------------------------------------------------------------
# Analysis cache
# ----------------------------------------------------------------------


class TestCacheEquivalence:
    def test_cached_analysis_matches_uncached(self):
        db, _ = fresh_world()
        uncached = Nebula(
            db.connection,
            db.meta,
            NebulaConfig(epsilon=0.6, analysis_cache_size=0),
            aliases=db.aliases,
        )
        cached = Nebula(
            db.connection, db.meta, NebulaConfig(epsilon=0.6), aliases=db.aliases
        )
        workload = generate_workload(db, WORKLOAD)
        texts = [(a.text, a.focal(1)) for a in workload.annotations[:8]]
        for _round in range(2):  # second round runs hot
            for text, focal in texts:
                plain = uncached.analyze(text, focal=focal)
                hot = cached.analyze(text, focal=focal)
                assert [
                    (c.ref, round(c.confidence, 12)) for c in hot.candidates
                ] == [(c.ref, round(c.confidence, 12)) for c in plain.candidates]
        assert uncached.analysis_cache.enabled is False
        assert cached.analysis_cache.stats.hits > 0

    def test_cache_invalidates_on_new_row(self, bio_nebula, bio_db):
        engine = bio_nebula.engine
        gid = bio_db.genes[0].gid
        before = engine.mapper.map_keyword(gid)
        hits_before = bio_nebula.analysis_cache.stats.hits
        assert engine.mapper.map_keyword(gid) == before
        assert bio_nebula.analysis_cache.stats.hits > hits_before

        # Mutate the index: the stale entry must be dropped, and the new
        # posting must be visible to the recomputed mapping.
        cursor = bio_nebula.connection.execute(
            "INSERT INTO Gene (GID, Name, Length, Seq, Family) "
            "VALUES ('JW9321', 'zzzQ', 1, 'A', 'F1')"
        )
        engine.index.add_row("Gene", "GID", cursor.lastrowid, "JW9321")
        invalidations_before = bio_nebula.analysis_cache.stats.invalidations
        engine.mapper.map_keyword(gid)
        assert (
            bio_nebula.analysis_cache.stats.invalidations > invalidations_before
        )
        fresh = engine.mapper.map_keyword("JW9321")
        assert any(
            m.kind.value == "value" and m.table == "Gene" for m in fresh
        )


# ----------------------------------------------------------------------
# Failure atomicity
# ----------------------------------------------------------------------


class TestBatchRollback:
    def snapshot(self, nebula):
        return {
            "annotations": nebula.manager.store.count_annotations(),
            "attachments": nebula.manager.store.count_attachments(),
            "acg_nodes": nebula.acg.node_count,
            "acg_edges": nebula.acg.edge_count,
        }

    def test_member_fault_rolls_back_whole_batch(self):
        faults = FaultInjector()
        db, nebula = fresh_world(NebulaConfig(epsilon=0.6, fault_injector=faults))
        requests = sample_requests(db, count=3)
        before = self.snapshot(nebula)

        faults.arm("queue.triage")
        with pytest.raises(PipelineStageError) as exc_info:
            nebula.insert_annotations(requests)

        assert exc_info.value.stage == "queue.triage"
        assert self.snapshot(nebula) == before
        # One dead letter per request, so a replay reconstructs the batch.
        assert nebula.dead_letters.count("pending") == len(requests)
        assert exc_info.value.dead_letter_id is not None

        replayed = nebula.reprocess_dead_letters()
        assert len(replayed) == len(requests)
        assert nebula.manager.store.count_annotations() == (
            before["annotations"] + len(requests)
        )

    def test_stability_tracker_untouched_by_failed_batch(self):
        faults = FaultInjector()
        db, nebula = fresh_world(NebulaConfig(epsilon=0.6, fault_injector=faults))
        history_before = list(nebula.stability.history)
        faults.arm("queue.triage")
        with pytest.raises(PipelineStageError):
            nebula.insert_annotations(sample_requests(db, count=2))
        assert nebula.stability.history == history_before
