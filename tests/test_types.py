"""Unit tests for the shared value types."""

import pytest

from repro.types import CellRef, ScoredTuple, TupleRef


class TestTupleRef:
    def test_ordering_and_equality(self):
        a = TupleRef("Gene", 1)
        b = TupleRef("Gene", 2)
        c = TupleRef("Protein", 1)
        assert a < b < c
        assert a == TupleRef("Gene", 1)

    def test_hashable(self):
        assert len({TupleRef("Gene", 1), TupleRef("Gene", 1)}) == 1

    def test_str(self):
        assert str(TupleRef("Gene", 3)) == "Gene#3"


class TestCellRef:
    def test_tuple_ref_projection(self):
        cell = CellRef("Gene", 4, "Name")
        assert cell.tuple_ref == TupleRef("Gene", 4)

    def test_str_with_and_without_column(self):
        assert str(CellRef("Gene", 4, "Name")) == "Gene#4.Name"
        assert str(CellRef("Gene", 4)) == "Gene#4"


class TestScoredTuple:
    def test_scaled(self):
        scored = ScoredTuple(TupleRef("Gene", 1), 0.5, ("q1",))
        scaled = scored.scaled(0.5)
        assert scaled.confidence == pytest.approx(0.25)
        assert scaled.ref == scored.ref
        assert scaled.provenance == ("q1",)
        assert scored.confidence == 0.5  # original untouched

    def test_rescored(self):
        scored = ScoredTuple(TupleRef("Gene", 1), 0.5)
        assert scored.rescored(0.9).confidence == 0.9

    def test_frozen(self):
        scored = ScoredTuple(TupleRef("Gene", 1), 0.5)
        with pytest.raises(Exception):
            scored.confidence = 1.0  # type: ignore[misc]
