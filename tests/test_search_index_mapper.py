"""Unit tests for the inverted value index and the keyword mapper."""

import pytest

from repro.meta.lexicon import DEFAULT_LEXICON
from repro.search.index import InvertedValueIndex, Posting
from repro.search.mapper import (
    EXACT_NAME_WEIGHT,
    ALIAS_NAME_WEIGHT,
    VALUE_BASE_WEIGHT,
    VALUE_FLOOR_WEIGHT,
    KeywordMapper,
    MappingKind,
)
from repro.search.metadata import SchemaGraph

from conftest import build_figure1_connection

SEARCHABLE = [("Gene", "GID"), ("Gene", "Name"), ("Protein", "PID"),
              ("Protein", "PName"), ("Protein", "PType")]


@pytest.fixture
def connection():
    return build_figure1_connection()


@pytest.fixture
def index(connection):
    return InvertedValueIndex.build(connection, SEARCHABLE)


@pytest.fixture
def mapper(connection, index):
    return KeywordMapper(
        SchemaGraph.from_connection(connection),
        index,
        aliases={"genes": ("Gene", None), "id": ("Gene", "GID")},
        lexicon=DEFAULT_LEXICON,
    )


class TestIndex:
    def test_exact_lookup(self, index):
        postings = index.lookup("JW0013")
        assert postings == (Posting("Gene", "GID", 1),)

    def test_lookup_normalizes_case(self, index):
        assert index.lookup("jw0013") == index.lookup("JW0013")

    def test_lookup_in_scoped(self, index):
        assert index.lookup_in("grpC", "Gene") == (Posting("Gene", "Name", 1),)
        assert index.lookup_in("grpC", "Protein") == ()

    def test_absent_value(self, index):
        assert index.lookup("absent") == ()

    def test_document_frequency(self, index):
        assert index.document_frequency("enzyme") == 1
        assert index.document_frequency("JW0013") >= 1

    def test_selectivity(self, index):
        assert index.selectivity("JW0013", "Gene", "GID") == 1.0
        assert index.selectivity("absent", "Gene", "GID") == 0.0

    def test_duplicate_column_registration_is_noop(self, connection, index):
        before = len(index)
        assert index.add_column(connection, "Gene", "GID") == 0
        assert len(index) == before

    def test_add_row_incremental(self, index):
        index.add_row("Gene", "GID", 99, "JW9999")
        assert index.lookup("JW9999") == (Posting("Gene", "GID", 99),)

    def test_indexed_columns(self, index):
        assert ("gene", "gid") in index.indexed_columns


class TestMapper:
    def test_exact_table_name(self, mapper):
        mappings = mapper.map_keyword("gene")
        assert mappings[0].kind is MappingKind.TABLE
        assert mappings[0].weight == EXACT_NAME_WEIGHT

    def test_alias(self, mapper):
        mappings = mapper.map_keyword("genes")
        assert any(
            m.kind is MappingKind.TABLE and m.weight == ALIAS_NAME_WEIGHT
            for m in mappings
        )

    def test_value_mapping_unique_value(self, mapper):
        mappings = mapper.map_keyword("JW0013")
        value = [m for m in mappings if m.kind is MappingKind.VALUE]
        assert value and value[0].weight == VALUE_BASE_WEIGHT

    def test_value_weight_decays_with_frequency(self):
        assert KeywordMapper._value_weight(1) > KeywordMapper._value_weight(5)
        assert KeywordMapper._value_weight(1000) == VALUE_FLOOR_WEIGHT

    def test_stopword_maps_to_nothing(self, mapper):
        assert mapper.map_keyword("the") == []

    def test_unknown_word(self, mapper):
        assert mapper.map_keyword("xyzzyplugh") == []

    def test_mappings_capped(self, mapper):
        mapper.max_mappings_per_keyword = 2
        assert len(mapper.map_keyword("gene")) <= 2

    def test_map_query_preserves_order(self, mapper):
        mapped = mapper.map_query(["gene", "JW0013"])
        assert list(mapped) == ["gene", "JW0013"]

    def test_column_name_mapping(self, mapper):
        mappings = mapper.map_keyword("family")
        assert any(
            m.kind is MappingKind.COLUMN and m.column == "Family" for m in mappings
        )

    def test_synonym_via_lexicon(self, mapper):
        # "locus" is a lexicon synonym of the Gene table name.
        mappings = mapper.map_keyword("locus")
        assert any(m.kind is MappingKind.TABLE and m.table == "Gene" for m in mappings)
