"""Units for the ``repro.perf`` package and the hot-path data structures.

Covers the versioned :class:`AnalysisCache` (LRU + generation
invalidation), the precomputed count structures of the inverted value
index, the mapper's per-query keyword dedup, the meta-repository memos,
the parallel SQL executor, and the bulk Stage-0 store path.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro import ConceptRef, Lexicon, NebulaMeta
from repro.annotations.engine import AnnotationManager
from repro.errors import StorageError
from repro.perf import (
    MISS,
    AnalysisCache,
    AnnotationRequest,
    ParallelSqlExecutor,
    coerce_request,
    database_path,
)
from repro.search.index import InvertedValueIndex
from repro.search.metadata import SchemaGraph
from repro.types import CellRef, TupleRef

from conftest import build_figure1_connection


# ----------------------------------------------------------------------
# AnalysisCache
# ----------------------------------------------------------------------


class TestAnalysisCache:
    def test_round_trip_and_stats(self):
        cache = AnalysisCache(max_entries=8)
        assert cache.get("ns", "k", 0) is MISS
        cache.put("ns", "k", 0, ("v",))
        assert cache.get("ns", "k", 0) == ("v",)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.snapshot()["entries"] == 1

    def test_namespaces_do_not_collide(self):
        cache = AnalysisCache(max_entries=8)
        cache.put("a", "k", 0, "from-a")
        cache.put("b", "k", 0, "from-b")
        assert cache.get("a", "k", 0) == "from-a"
        assert cache.get("b", "k", 0) == "from-b"

    def test_stale_generation_is_invalidated(self):
        cache = AnalysisCache(max_entries=8)
        cache.put("ns", "k", 1, "old")
        assert cache.get("ns", "k", 2) is MISS
        assert cache.stats.invalidations == 1
        # The stale entry is gone — even the old generation misses now.
        assert cache.get("ns", "k", 1) is MISS

    def test_tuple_generations_are_supported(self):
        cache = AnalysisCache(max_entries=8)
        cache.put("ns", "k", (3, 7), "v")
        assert cache.get("ns", "k", (3, 7)) == "v"
        assert cache.get("ns", "k", (3, 8)) is MISS

    def test_lru_eviction(self):
        cache = AnalysisCache(max_entries=2)
        cache.put("ns", "a", 0, 1)
        cache.put("ns", "b", 0, 2)
        assert cache.get("ns", "a", 0) == 1  # refresh "a"
        cache.put("ns", "c", 0, 3)  # evicts "b"
        assert cache.get("ns", "b", 0) is MISS
        assert cache.get("ns", "a", 0) == 1
        assert cache.stats.evictions == 1

    def test_zero_capacity_disables(self):
        cache = AnalysisCache(max_entries=0)
        assert cache.enabled is False
        cache.put("ns", "k", 0, "v")
        assert cache.get("ns", "k", 0) is MISS
        assert len(cache) == 0

    def test_cached_falsy_values_hit(self):
        cache = AnalysisCache(max_entries=8)
        cache.put("ns", "k", 0, ())
        assert cache.get("ns", "k", 0) == ()
        assert cache.stats.hits == 1


# ----------------------------------------------------------------------
# Inverted value index count structures
# ----------------------------------------------------------------------


class TestIndexCounts:
    @pytest.fixture()
    def index(self):
        connection = build_figure1_connection()
        index = InvertedValueIndex.build(
            connection,
            [("Gene", "GID"), ("Gene", "Family"), ("Protein", "PType")],
        )
        yield index, connection
        connection.close()

    def test_lookup_returns_cached_view(self, index):
        idx, _ = index
        first = idx.lookup("F1")
        assert first is idx.lookup("F1")  # identity: no per-call copy
        assert idx.lookup("nonexistent") == ()

    def test_counts_agree_with_postings(self, index):
        idx, _ = index
        for word in ("F1", "JW0013", "enzyme"):
            postings = idx.lookup(word)
            assert idx.document_frequency(word) == len(postings)
            by_column = {}
            for posting in postings:
                key = (posting.table, posting.column)
                by_column[key] = by_column.get(key, 0) + 1
            assert idx.column_counts(word) == by_column
            for (table, column), count in by_column.items():
                assert idx.match_count(word, table, column) == count
                assert idx.selectivity(word, table, column) == 1.0 / count
        assert idx.selectivity("nonexistent", "Gene", "GID") == 0.0

    def test_lookup_in_matches_filtered_postings(self, index):
        idx, _ = index
        all_f1 = idx.lookup("F1")
        assert idx.lookup_in("F1", "Gene") == tuple(
            p for p in all_f1 if p.table.casefold() == "gene"
        )
        assert idx.lookup_in("F1", "Gene", "Family") == tuple(
            p
            for p in all_f1
            if p.table.casefold() == "gene" and p.column.casefold() == "family"
        )
        assert idx.lookup_in("F1", "Protein") == ()

    def test_add_row_bumps_generation_and_refreshes_view(self, index):
        idx, _ = index
        stale_view = idx.lookup("F1")
        generation = idx.generation
        idx.add_row("Gene", "Family", 99, "F1")
        assert idx.generation == generation + 1
        fresh_view = idx.lookup("F1")
        assert fresh_view is not stale_view
        assert len(fresh_view) == len(stale_view) + 1
        assert idx.match_count("F1", "Gene", "Family") == len(
            idx.lookup_in("F1", "Gene", "Family")
        )

    def test_empty_value_does_not_bump_generation(self, index):
        idx, _ = index
        generation = idx.generation
        idx.add_row("Gene", "Family", 100, "")
        assert idx.generation == generation


# ----------------------------------------------------------------------
# Mapper dedup / meta memoization / lexicon + schema versions
# ----------------------------------------------------------------------


class TestHotPathMemos:
    def test_map_query_computes_duplicates_once(self, figure1_db):
        from repro.search.engine import KeywordSearchEngine

        connection, _ = figure1_db
        engine = KeywordSearchEngine(
            connection, [("Gene", "GID"), ("Gene", "Name")]
        )
        calls = []
        original = engine.mapper.map_keyword

        def counting(keyword):
            calls.append(keyword)
            return original(keyword)

        engine.mapper.map_keyword = counting
        mapped = engine.mapper.map_query(["JW0013", "gene", "JW0013", "gene"])
        assert calls == ["JW0013", "gene"]
        assert set(mapped) == {"JW0013", "gene"}

    def test_meta_memoizes_until_mutation(self, figure1_meta):
        first = figure1_meta.concept_mappings("gene")
        assert figure1_meta.concept_mappings("gene") == first
        generation = figure1_meta.generation
        figure1_meta.add_concept(
            ConceptRef.build("Assay", "Gene", [["Seq"]], equivalent_names=["assay"])
        )
        assert figure1_meta.generation > generation
        assert any(
            m.concept == "Assay" for m in figure1_meta.concept_mappings("assay")
        )

    def test_lexicon_generation_counts_mutations(self):
        lexicon = Lexicon()
        generation = lexicon.generation
        lexicon.add_synset(["tumour", "tumor"])
        assert lexicon.generation == generation + 1
        lexicon.add_synset(["solo"])  # ignored: < 2 words
        assert lexicon.generation == generation + 1
        lexicon.add_hyponyms("enzyme", ["ligase"])
        assert lexicon.generation == generation + 2

    def test_schema_normalized_names_cached(self, figure1_connection):
        graph = SchemaGraph.from_connection(figure1_connection)
        names = graph.normalized_names()
        assert names is graph.normalized_names()
        by_table = dict((t, (n, dict(cols))) for t, n, cols in names)
        assert by_table["Gene"][0] == "gene"
        assert by_table["Protein"][1]["PName"] == "pname"


# ----------------------------------------------------------------------
# Parallel executor
# ----------------------------------------------------------------------


class TestParallelSqlExecutor:
    def test_in_memory_database_unavailable(self):
        connection = sqlite3.connect(":memory:")
        assert database_path(connection) is None
        executor = ParallelSqlExecutor(connection, workers=4)
        assert executor.available is False
        with pytest.raises(RuntimeError):
            executor.run([("SELECT 1", ())])
        connection.close()

    def test_single_worker_unavailable(self, tmp_path):
        connection = sqlite3.connect(str(tmp_path / "one.db"))
        executor = ParallelSqlExecutor(connection, workers=1)
        assert executor.available is False
        connection.close()

    def test_runs_statements_in_submission_order(self, tmp_path):
        path = str(tmp_path / "data.db")
        connection = sqlite3.connect(path)
        connection.execute("CREATE TABLE t (v INTEGER)")
        connection.executemany(
            "INSERT INTO t VALUES (?)", [(n,) for n in range(20)]
        )
        connection.commit()
        assert database_path(connection) == path
        with ParallelSqlExecutor(connection, workers=3) as executor:
            statements = [
                ("SELECT v FROM t WHERE v = ?", (str(n),)) for n in range(12)
            ]
            outcomes = executor.run(statements)
            assert [rows for rows, _elapsed in outcomes] == [
                [(n,)] for n in range(12)
            ]
            assert all(elapsed >= 0.0 for _rows, elapsed in outcomes)
        assert executor.available is False  # closed
        connection.close()

    def test_workers_are_read_only(self, tmp_path):
        connection = sqlite3.connect(str(tmp_path / "ro.db"))
        connection.execute("CREATE TABLE t (v INTEGER)")
        connection.commit()
        with ParallelSqlExecutor(connection, workers=2) as executor:
            with pytest.raises(Exception):
                executor.run([("INSERT INTO t VALUES (1)", ()), ("SELECT 1", ())])
        connection.close()


# ----------------------------------------------------------------------
# Batch request inputs / bulk Stage-0 store
# ----------------------------------------------------------------------


class TestBatchInputs:
    def test_coerce_request(self):
        request = coerce_request("plain text")
        assert request == AnnotationRequest(text="plain text")
        prepared = AnnotationRequest.build(
            "t", [TupleRef("Gene", 1)], author="alice"
        )
        assert coerce_request(prepared) is prepared
        assert prepared.focal == (TupleRef("Gene", 1),)


class TestBulkStore:
    def test_bulk_insert_matches_sequential(self):
        sequential = AnnotationManager(build_figure1_connection())
        bulk = AnnotationManager(build_figure1_connection())
        items = [
            ("first note", [CellRef("Gene", 1)], "alice"),
            ("second note", [CellRef("Gene", 2), CellRef("Protein", 1)], None),
            ("third note", [], "bob"),
        ]
        for content, attach_to, author in items:
            sequential.add_annotation(content, attach_to=attach_to, author=author)
        annotations = bulk.bulk_add_annotations(items)

        def rows(manager, table, columns):
            return manager.connection.execute(
                f"SELECT {columns} FROM {table} ORDER BY 1, 2"
            ).fetchall()

        assert [a.content for a in annotations] == [c for c, _a, _au in items]
        for table, columns in (
            ("_nebula_annotations", "annotation_id, content, author, created_seq"),
            (
                "_nebula_attachments",
                "annotation_id, target_table, target_rowid, confidence, kind",
            ),
        ):
            assert rows(bulk, table, columns) == rows(sequential, table, columns)

    def test_bulk_validates_before_writing(self):
        manager = AnnotationManager(build_figure1_connection())
        with pytest.raises(StorageError):
            manager.bulk_add_annotations(
                [
                    ("ok", [CellRef("Gene", 1)], None),
                    ("bad", [CellRef("NoSuchTable", 1)], None),
                ]
            )
        assert manager.store.count_annotations() == 0
        assert manager.store.count_attachments() == 0

    def test_bulk_attach_deduplicates_edges(self):
        manager = AnnotationManager(build_figure1_connection())
        (annotation,) = manager.store.bulk_insert_annotations([("note", None)])
        target = CellRef("Gene", 1)
        written = manager.store.bulk_attach_true(
            [(annotation.annotation_id, target), (annotation.annotation_id, target)]
        )
        assert written == 1
        assert manager.store.count_attachments() == 1
