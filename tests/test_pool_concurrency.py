"""ConnectionPool under real thread contention: exhaustion, health-probe
eviction, and stats accuracy (PR 6, satellite of the service work)."""

import sqlite3
import threading

import pytest

from repro.errors import PoolExhaustedError
from repro.storage import ConnectionPool


@pytest.fixture()
def factory(tmp_path):
    path = str(tmp_path / "pool.db")
    bootstrap = sqlite3.connect(path)
    bootstrap.execute("CREATE TABLE t (x INTEGER)")
    bootstrap.execute("INSERT INTO t VALUES (1)")
    bootstrap.commit()
    bootstrap.close()

    def connect():
        return sqlite3.connect(path, check_same_thread=False)

    return connect


class TestExhaustion:
    def test_held_leases_exhaust_the_pool(self, factory):
        pool = ConnectionPool(factory, size=2, timeout=0.05)
        first = pool.acquire()
        second = pool.acquire()
        assert pool.leased_count == 2
        with pytest.raises(PoolExhaustedError):
            pool.acquire(timeout=0.05)
        assert pool.stats.waited >= 1
        # A release unblocks the next acquire.
        first.release()
        third = pool.acquire(timeout=0.05)
        third.release()
        second.release()
        pool.close()

    def test_blocked_acquire_wakes_on_release(self, factory):
        pool = ConnectionPool(factory, size=1, timeout=5.0)
        lease = pool.acquire()
        acquired = threading.Event()

        def waiter():
            inner = pool.acquire(timeout=5.0)
            acquired.set()
            inner.release()

        thread = threading.Thread(target=waiter)
        thread.start()
        assert not acquired.wait(0.05)  # genuinely blocked
        lease.release()
        assert acquired.wait(5.0)
        thread.join()
        assert pool.stats.waited >= 1
        pool.close()


class TestHealthProbe:
    def test_poisoned_idle_connection_is_evicted(self, factory):
        pool = ConnectionPool(factory, size=2)
        lease = pool.acquire()
        # Close the driver handle behind the pool's back: the idle
        # connection is now poisoned and must fail its next probe.
        lease.connection.close()
        lease.release()
        assert pool.idle_count == 1
        replacement = pool.acquire()
        replacement.connection.execute("SELECT x FROM t").fetchone()
        replacement.release()
        assert pool.stats.recycled == 1
        assert pool.stats.created == 2  # original + replacement
        pool.close()

    def test_probe_can_be_disabled(self, factory):
        pool = ConnectionPool(factory, size=1, health_check=False)
        lease = pool.acquire()
        lease.connection.close()
        lease.release()
        poisoned = pool.acquire()
        with pytest.raises(sqlite3.Error):
            poisoned.connection.execute("SELECT 1")
        poisoned.release()
        assert pool.stats.recycled == 0
        pool.close()


class TestStatsUnderContention:
    def test_stats_accurate_with_many_threads(self, factory):
        pool = ConnectionPool(factory, size=3, timeout=10.0)
        rounds = 25
        workers = 8
        errors = []

        def worker():
            for _ in range(rounds):
                try:
                    with pool.acquire(timeout=10.0) as connection:
                        row = connection.execute("SELECT x FROM t").fetchone()
                        assert row == (1,)
                except Exception as error:  # pragma: no cover - diagnostics
                    errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        stats = pool.stats
        assert stats.acquired == workers * rounds
        assert stats.created + stats.reused == stats.acquired
        assert stats.created <= pool.size  # bounded: never over-allocates
        assert pool.leased_count == 0
        assert pool.idle_count <= pool.size
        pool.close()

    def test_bounded_under_burst(self, factory):
        pool = ConnectionPool(factory, size=2, timeout=10.0)
        barrier = threading.Barrier(6)
        peak = []
        lock = threading.Lock()

        def worker():
            barrier.wait()
            with pool.acquire(timeout=10.0):
                with lock:
                    peak.append(pool.leased_count)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert max(peak) <= 2
        pool.close()
