"""Unit + property tests for Definition 7.2 and the model metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.core.assessment import assess, average_assessments, band_counts
from repro.core.model import false_negative_ratio, false_positive_ratio
from repro.types import ScoredTuple, TupleRef


def _t(i: int) -> TupleRef:
    return TupleRef("Gene", i)


def _scored(pairs):
    return [ScoredTuple(_t(i), conf, ()) for i, conf in pairs]


class TestBandCounts:
    def test_basic_banding(self):
        candidates = _scored([(1, 0.95), (2, 0.5), (3, 0.1), (4, 0.9), (5, 0.6)])
        ideal = {_t(1), _t(2)}
        counts = band_counts(candidates, ideal, [], 0.32, 0.86)
        n_reject, n_verify_t, n_verify_f, n_accept_t, n_accept_f = counts
        assert n_reject == 1       # #3
        assert n_verify_t == 1     # #2 (0.5, correct)
        assert n_verify_f == 1     # #5 (0.6, wrong)
        assert n_accept_t == 1     # #1 (0.95, correct)
        assert n_accept_f == 1     # #4 (0.9, wrong)

    def test_focal_excluded(self):
        candidates = _scored([(1, 0.95)])
        counts = band_counts(candidates, {_t(1)}, [_t(1)], 0.32, 0.86)
        assert counts == (0, 0, 0, 0, 0)


class TestAssess:
    def test_perfect_prediction(self):
        candidates = _scored([(2, 0.95), (3, 0.9)])
        ideal = {_t(1), _t(2), _t(3)}
        result = assess(candidates, ideal, [_t(1)], 0.32, 0.86)
        assert result.f_n == 0.0
        assert result.f_p == 0.0
        assert result.m_f == 0

    def test_false_negative_counted(self):
        candidates = _scored([(2, 0.95)])
        ideal = {_t(1), _t(2), _t(3)}  # 3 is never found
        result = assess(candidates, ideal, [_t(1)], 0.32, 0.86)
        assert result.f_n == pytest.approx(1 / 3)

    def test_rejected_true_link_is_false_negative(self):
        candidates = _scored([(2, 0.1)])  # true link auto-rejected
        ideal = {_t(1), _t(2)}
        result = assess(candidates, ideal, [_t(1)], 0.32, 0.86)
        assert result.f_n == pytest.approx(0.5)

    def test_only_auto_accept_makes_false_positives(self):
        # A wrong prediction in the verify band is caught by the expert, so
        # it must not contribute to F_P (only to M_F).
        candidates = _scored([(9, 0.6)])
        ideal = {_t(1)}
        result = assess(candidates, ideal, [_t(1)], 0.32, 0.86)
        assert result.f_p == 0.0
        assert result.m_f == 1
        assert result.m_h == 0.0

    def test_wrong_auto_accept_is_false_positive(self):
        candidates = _scored([(9, 0.95)])
        ideal = {_t(1)}
        result = assess(candidates, ideal, [_t(1)], 0.32, 0.86)
        assert result.f_p == pytest.approx(1 / 2)  # N_accept_F / (0 + 1 + 1)

    def test_manual_hit_ratio(self):
        candidates = _scored([(2, 0.6), (9, 0.6)])
        ideal = {_t(1), _t(2)}
        result = assess(candidates, ideal, [_t(1)], 0.32, 0.86)
        assert result.m_f == 2
        assert result.m_h == pytest.approx(0.5)

    def test_empty_ideal(self):
        result = assess([], set(), [], 0.32, 0.86)
        assert result.f_n == 0.0
        assert result.f_p == 0.0

    def test_degenerate_bounds_no_expert(self):
        # beta_lower == beta_upper == 0.5: everything is decided
        # automatically, M_F must be zero.
        candidates = _scored([(2, 0.6), (9, 0.55), (3, 0.4)])
        ideal = {_t(1), _t(2), _t(3)}
        result = assess(candidates, ideal, [_t(1)], 0.5, 0.5)
        assert result.m_f == 0
        assert result.n_accept == 2
        assert result.n_reject == 1
        assert result.f_p > 0.0   # the wrong 0.55 got auto-accepted
        assert result.f_n > 0.0   # the true 0.4 got auto-rejected


class TestAverage:
    def test_average_of_two(self):
        a = assess(_scored([(2, 0.95)]), {_t(1), _t(2)}, [_t(1)], 0.32, 0.86)
        b = assess(_scored([(9, 0.6)]), {_t(1)}, [_t(1)], 0.32, 0.86)
        avg = average_assessments([a, b])
        assert avg.f_n == pytest.approx((a.f_n + b.f_n) / 2)
        assert avg.m_f == round((a.m_f + b.m_f) / 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_assessments([])


class TestModelMetrics:
    def test_equations_one_and_two(self):
        ideal = {(1, _t(1)), (1, _t(2)), (2, _t(3))}
        actual = {(1, _t(1)), (2, _t(3)), (2, _t(4))}
        assert false_negative_ratio(ideal, actual) == pytest.approx(1 / 3)
        assert false_positive_ratio(ideal, actual) == pytest.approx(1 / 3)

    def test_empty_sets(self):
        assert false_negative_ratio(set(), {(1, _t(1))}) == 0.0
        assert false_positive_ratio({(1, _t(1))}, set()) == 0.0

    def test_no_predicted_edges_no_false_positives(self):
        """Paper §3: a database without predicted edges has F_P = 0."""
        ideal = {(1, _t(1)), (1, _t(2))}
        actual = {(1, _t(1))}  # subset of ideal
        assert false_positive_ratio(ideal, actual) == 0.0


# ----------------------------------------------------------------------
# Property-based invariants
# ----------------------------------------------------------------------

_candidates_strategy = st.lists(
    st.tuples(st.integers(1, 20), st.floats(0.0, 1.0, allow_nan=False)),
    max_size=30,
).map(lambda pairs: _scored([(i, round(c, 6)) for i, c in pairs]))


@given(
    candidates=_candidates_strategy,
    ideal=st.sets(st.integers(1, 20), max_size=20).map(lambda s: {_t(i) for i in s}),
    bounds=st.tuples(st.floats(0, 1), st.floats(0, 1)).map(
        lambda p: (min(p), max(p))
    ),
)
def test_assessment_invariants(candidates, ideal, bounds):
    lower, upper = bounds
    result = assess(candidates, ideal, [], lower, upper)
    assert 0.0 <= result.f_n <= 1.0
    assert 0.0 <= result.f_p <= 1.0
    assert 0.0 <= result.m_h <= 1.0
    assert result.m_f == result.n_verify
    # Counter conservation: every non-focal candidate lands in one band.
    total = result.n_reject + result.n_verify + result.n_accept
    assert total == len(candidates)


@given(
    ideal=st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=20),
    actual=st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=20),
)
def test_metric_identities(ideal, actual):
    fn = false_negative_ratio(ideal, actual)
    fp = false_positive_ratio(ideal, actual)
    assert 0.0 <= fn <= 1.0
    assert 0.0 <= fp <= 1.0
    if ideal == actual:
        assert fn == 0.0 and fp == 0.0
    if ideal and actual and not (set(ideal) & set(actual)):
        assert fn == 1.0 and fp == 1.0
