"""Failure-injection and degenerate-input tests.

The engine must degrade gracefully — not crash — when fed broken state:
dangling attachments after raw deletes, empty metadata, empty databases,
invalid configuration, and malformed stored rows.
"""

import re
import sqlite3

import pytest

from repro import Nebula, NebulaConfig, NebulaMeta, ValuePattern
from repro.annotations.engine import AnnotationManager
from repro.config import NebulaConfig as Config
from repro.core.explain import _tuple_values
from repro.datagen.stats import collect_stats
from repro.errors import ConfigurationError
from repro.search.engine import KeywordQuery, KeywordSearchEngine
from repro.types import CellRef, TupleRef

from conftest import build_figure1_connection, build_figure1_meta


class TestDanglingState:
    def test_stats_survive_raw_row_delete(self):
        connection = build_figure1_connection()
        manager = AnnotationManager(connection)
        manager.add_annotation("x", attach_to=[CellRef("Gene", 1)])
        # Bypass the editor: the data row vanishes, the attachment dangles.
        connection.execute("DELETE FROM Gene WHERE rowid = 1")
        stats = collect_stats(connection)
        assert stats.true_attachments == 1
        assert stats.table_rows["Gene"] == 6

    def test_explain_tuple_values_for_missing_row(self):
        connection = build_figure1_connection()
        connection.execute("DELETE FROM Gene WHERE rowid = 1")
        assert _tuple_values(connection, "Gene", 1) == {}

    def test_acg_build_with_dangling_attachment(self):
        connection = build_figure1_connection()
        manager = AnnotationManager(connection)
        manager.add_annotation(
            "x", attach_to=[CellRef("Gene", 1), CellRef("Gene", 2)]
        )
        connection.execute("DELETE FROM Gene WHERE rowid = 1")
        from repro.core.acg import AnnotationsConnectivityGraph

        acg = AnnotationsConnectivityGraph.build_from_manager(manager)
        # The graph models attachments, not live rows: it still builds.
        assert acg.edge_count == 1


class TestEmptyWorlds:
    def test_nebula_with_conceptless_meta(self):
        connection = build_figure1_connection()
        nebula = Nebula(connection, NebulaMeta(), NebulaConfig())
        report = nebula.analyze("gene JW0014 appears here")
        # No concepts -> no maps -> no queries -> no candidates. No crash.
        assert report.generation.queries == []
        assert report.candidates == []

    def test_engine_with_no_searchable_columns(self):
        connection = build_figure1_connection()
        engine = KeywordSearchEngine(connection, searchable_columns=[])
        result = engine.search(KeywordQuery(("gene", "JW0013")))
        assert result.tuples == []

    def test_stats_on_fresh_database(self, tmp_path):
        connection = sqlite3.connect(str(tmp_path / "fresh.db"))
        stats = collect_stats(connection)
        assert stats.annotations == 0
        assert stats.acg_nodes == 0
        # The stats pass created the side tables; they stay hidden.
        assert all(not t.startswith("_nebula") for t in stats.table_rows)

    def test_empty_annotation_workload_subsets(self, bio_db):
        from repro.datagen.workload import AnnotationWorkload, WorkloadSpec

        empty = AnnotationWorkload(spec=WorkloadSpec())
        assert empty.group(100) == []
        assert empty.subset(100, (1, 3)) == []
        assert len(empty) == 0


class TestMalformedInputs:
    def test_invalid_regex_pattern_raises(self):
        with pytest.raises(re.error):
            ValuePattern(r"[unclosed")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"focal_mode": "nonsense"},
            {"focal_max_hops": 0},
        ],
    )
    def test_invalid_focal_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            Config(**kwargs)

    def test_corrupt_attachment_kind_rejected_by_schema(self):
        connection = build_figure1_connection()
        manager = AnnotationManager(connection)
        annotation = manager.add_annotation("x")
        # The CHECK constraint guards the kind column at the SQL level.
        with pytest.raises(sqlite3.IntegrityError):
            connection.execute(
                "INSERT INTO _nebula_attachments "
                "(annotation_id, target_table, target_rowid, confidence, kind) "
                "VALUES (?, 'Gene', 1, 0.5, 'bogus')",
                (annotation.annotation_id,),
            )

    def test_verification_status_check_constraint(self):
        connection = build_figure1_connection()
        nebula = Nebula(connection, build_figure1_meta(), NebulaConfig())
        with pytest.raises(sqlite3.IntegrityError):
            connection.execute(
                "INSERT INTO _nebula_verification_tasks "
                "(annotation_id, target_table, target_rowid, confidence, "
                "evidence, status) VALUES (1, 'Gene', 1, 0.5, '', 'weird')"
            )

    def test_annotation_with_only_punctuation(self):
        connection = build_figure1_connection()
        nebula = Nebula(connection, build_figure1_meta(), NebulaConfig())
        report = nebula.analyze("... !!! ???")
        assert report.candidates == []

    def test_annotation_with_unicode(self):
        connection = build_figure1_connection()
        nebula = Nebula(connection, build_figure1_meta(), NebulaConfig())
        report = nebula.analyze("gene JW0014 étudié 研究 🚀")
        # The reference still resolves despite surrounding non-ASCII
        # (accented/CJK words tokenize into fragments that map to nothing).
        assert TupleRef("Gene", 2) in [t.ref for t in report.candidates]


class TestConcurrentEngines:
    def test_two_engines_one_connection(self):
        """Two Nebula instances over the same connection share state via
        SQLite; the second sees the first's insertions."""
        connection = build_figure1_connection()
        meta = build_figure1_meta()
        first = Nebula(connection, meta, NebulaConfig())
        second = Nebula(connection, meta, NebulaConfig())
        report = first.insert_annotation(
            "gene JW0014 here", attach_to=[TupleRef("Gene", 1)]
        )
        assert second.manager.annotation(report.annotation_id).content
        # The second engine's ACG was built before the insert: stale by
        # design (the paper rebuilds "at once"); a fresh engine catches up.
        third = Nebula(connection, meta, NebulaConfig())
        assert third.acg.node_count >= second.acg.node_count
