"""Lifecycle integration tests: persistence and stability-driven modes.

These cover the operational story the paper tells:

* the annotated database lives in SQLite, so annotations, attachments,
  verification tasks, and rules all survive a close/reopen cycle, and a
  fresh Nebula engine rebuilds the ACG from the store;
* as annotations stream in, the stability tracker matures and
  ``insert_annotation`` switches from full-database search to the
  focal-based spreading search on its own.
"""

import os
import sqlite3

import pytest

from repro import (
    BioDatabaseSpec,
    Nebula,
    NebulaConfig,
    generate_bio_database,
    generate_workload,
)
from repro.core.verification import Decision
from repro.datagen.workload import WorkloadSpec


class TestPersistence:
    def test_reopen_preserves_everything(self, tmp_path):
        path = str(tmp_path / "world.db")
        connection = sqlite3.connect(path)
        db = generate_bio_database(
            BioDatabaseSpec(genes=60, proteins=36, publications=200, seed=23),
            connection=connection,
        )
        nebula = Nebula(
            db.connection, db.meta,
            NebulaConfig(epsilon=0.6, beta_lower=0.01, beta_upper=0.999),
            aliases=db.aliases,
        )
        genes, _ = db.community_members(1)
        report = nebula.insert_annotation(
            f"We examined genes {genes[1].gid}, and later saw {genes[2].gid} too.",
            attach_to=[db.resolve("gene", genes[0].gid)],
        )
        pending_before = [t for t in report.tasks if t.decision is Decision.PENDING]
        accepted_before = [t for t in report.tasks if t.decision.is_accepted]
        annotation_count = nebula.manager.store.count_annotations()
        acg_edges = nebula.acg.edge_count
        connection.commit()
        connection.close()

        # Reopen with a completely fresh engine.
        reopened = sqlite3.connect(path)
        from repro.datagen.biodb import _build_meta

        meta = _build_meta(reopened)
        fresh = Nebula(reopened, meta, NebulaConfig(epsilon=0.6))
        assert fresh.manager.store.count_annotations() == annotation_count
        # The ACG rebuilds from the persisted true attachments.
        assert fresh.acg.edge_count == acg_edges
        # Pending tasks survive and can still be resolved.
        pending_after = fresh.pending_tasks()
        assert {t.task_id for t in pending_after} == {
            t.task_id for t in pending_before
        }
        if pending_after:
            resolved = fresh.verify_attachment(pending_after[0].task_id)
            assert resolved.decision is Decision.VERIFIED
        # Previously accepted attachments are still true edges.
        if accepted_before:
            focal = fresh.manager.focal_of(report.annotation_id)
            assert accepted_before[0].ref in focal

    def test_rules_survive_reopen(self, tmp_path):
        from repro.annotations.engine import AnnotationManager
        from repro.annotations.rules import RuleEngine

        path = str(tmp_path / "rules.db")
        connection = sqlite3.connect(path)
        connection.executescript(
            "CREATE TABLE Gene (GID TEXT PRIMARY KEY, Family TEXT NOT NULL);"
        )
        connection.execute("INSERT INTO Gene VALUES ('JW0001', 'F1')")
        manager = AnnotationManager(connection)
        engine = RuleEngine(manager)
        note = manager.add_annotation("F1 watch")
        engine.create_rule(note.annotation_id, "Gene", "Family = 'F1'")
        connection.commit()
        connection.close()

        reopened = sqlite3.connect(path)
        fresh_engine = RuleEngine(AnnotationManager(reopened))
        rules = fresh_engine.rules()
        assert len(rules) == 1
        assert rules[0].predicate == "Family = 'F1'"


class TestStabilityDrivenModeSwitch:
    def test_stream_flips_to_spreading(self):
        db = generate_bio_database(
            BioDatabaseSpec(genes=64, proteins=40, publications=600,
                            community_size=8, seed=41)
        )
        workload = generate_workload(db, WorkloadSpec(seed=43))
        # A small batch size and a permissive mu: the mature ACG (built
        # from 600 publications) should register as stable quickly.
        nebula = Nebula(
            db.connection, db.meta,
            NebulaConfig(epsilon=0.6, batch_size=10, stability_mu=0.6),
            aliases=db.aliases,
        )
        modes = []
        for annotation in workload.annotations[:30]:
            focal = annotation.focal(1)
            report = nebula.insert_annotation(annotation.text, attach_to=focal)
            modes.append(report.mode)
        # The stream starts in full mode (tracker has no history)...
        assert modes[0] == "full"
        # ...and flips to spreading once a batch confirms stability.
        assert "spreading" in modes
        flip = modes.index("spreading")
        assert all(m == "full" for m in modes[:flip])

    def test_explicit_override_beats_stability(self):
        db = generate_bio_database(
            BioDatabaseSpec(genes=48, proteins=30, publications=200, seed=47)
        )
        nebula = Nebula(db.connection, db.meta, NebulaConfig(epsilon=0.6),
                        aliases=db.aliases)
        genes, _ = db.community_members(0)
        focal = [db.resolve("gene", genes[0].gid)]
        forced = nebula.analyze(
            f"gene {genes[1].gid} noted.", focal=focal, use_spreading=True
        )
        assert forced.mode == "spreading"
        suppressed = nebula.analyze(
            f"gene {genes[1].gid} noted.", focal=focal, use_spreading=False
        )
        assert suppressed.mode == "full"
