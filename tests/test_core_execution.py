"""Unit tests for IdentifyRelatedTuples, focal adjustment, and sharing."""

import pytest

from repro.config import NebulaConfig
from repro.core.acg import AnnotationsConnectivityGraph
from repro.core.execution import identify_related_tuples
from repro.core.focal import apply_focal_adjustment, focal_reward_factor
from repro.core.query_generation import generate_queries
from repro.core.shared_execution import SharedExecutor
from repro.meta.lexicon import DEFAULT_LEXICON
from repro.search.engine import KeywordQuery, KeywordSearchEngine, SearchScope
from repro.types import TupleRef

from conftest import build_figure1_connection, build_figure1_meta

SEARCHABLE = [("Gene", "GID"), ("Gene", "Name"), ("Protein", "PID"),
              ("Protein", "PName"), ("Protein", "PType")]


@pytest.fixture
def engine():
    return KeywordSearchEngine(
        build_figure1_connection(),
        searchable_columns=SEARCHABLE,
        aliases={"genes": ("Gene", None)},
        lexicon=DEFAULT_LEXICON,
    )


def _queries():
    return [
        KeywordQuery(("gene", "JW0014"), weight=1.0, label="q1"),
        KeywordQuery(("gene", "groP"), weight=0.8, label="q2"),
        KeywordQuery(("gene", "yaaB"), weight=0.6, label="q3"),
    ]


class TestIdentifyRelatedTuples:
    def test_grouping_rewards_multi_query_tuples(self, engine):
        # Gene#2 is JW0014 *and* groP: it satisfies q1 and q2 and must
        # outrank Gene#5 (yaaB) which satisfies only q3.
        result = identify_related_tuples(_queries(), engine)
        assert result.tuples[0].ref == TupleRef("Gene", 2)
        assert result.confidence_of(TupleRef("Gene", 2)) == 1.0
        assert result.confidence_of(TupleRef("Gene", 5)) < 1.0

    def test_provenance_collects_query_labels(self, engine):
        result = identify_related_tuples(_queries(), engine)
        top = result.tuples[0]
        assert set(top.provenance) == {"q1", "q2"}

    def test_query_weight_scales_confidence(self, engine):
        heavy = identify_related_tuples(
            [KeywordQuery(("gene", "yaaB"), weight=1.0, label="q")], engine
        )
        light = identify_related_tuples(
            [KeywordQuery(("gene", "yaaB"), weight=0.1, label="q")], engine
        )
        # Normalization hides absolute scale with one query; check raw count
        # equality and that both found the tuple.
        assert heavy.refs == light.refs

    def test_normalized_to_unit_max(self, engine):
        result = identify_related_tuples(_queries(), engine)
        assert max(t.confidence for t in result.tuples) == 1.0

    def test_empty_queries(self, engine):
        result = identify_related_tuples([], engine)
        assert result.tuples == []
        assert result.raw_tuple_count == 0

    def test_raw_count_sums_per_query_answers(self, engine):
        result = identify_related_tuples(_queries(), engine)
        assert result.raw_tuple_count == sum(
            len(r.tuples) for r in result.per_query.values()
        )

    def test_scope_propagates(self, engine):
        scope = SearchScope.from_refs([TupleRef("Gene", 5)])
        result = identify_related_tuples(_queries(), engine, scope=scope)
        assert result.refs == [TupleRef("Gene", 5)]


class TestFocalAdjustment:
    @pytest.fixture
    def acg(self):
        acg = AnnotationsConnectivityGraph()
        # focal f=Gene#1 shares annotations with Gene#2 (strongly) and
        # Gene#3 (weakly); Gene#4 is unconnected.
        acg.add_attachment(1, TupleRef("Gene", 1))
        acg.add_attachment(1, TupleRef("Gene", 2))
        acg.add_attachment(2, TupleRef("Gene", 1))
        acg.add_attachment(2, TupleRef("Gene", 2))
        acg.add_attachment(3, TupleRef("Gene", 1))
        acg.add_attachment(3, TupleRef("Gene", 3))
        acg.add_attachment(4, TupleRef("Gene", 3))
        acg.add_attachment(5, TupleRef("Gene", 4))
        return acg

    def test_connected_candidate_boosted(self, acg):
        focal = [TupleRef("Gene", 1)]
        confidences = {TupleRef("Gene", 2): 0.5, TupleRef("Gene", 4): 0.5}
        adjusted = apply_focal_adjustment(confidences, acg, focal)
        assert adjusted[TupleRef("Gene", 2)] > adjusted[TupleRef("Gene", 4)]
        assert adjusted[TupleRef("Gene", 4)] == 0.5

    def test_stronger_edge_bigger_boost(self, acg):
        focal = [TupleRef("Gene", 1)]
        factor2 = focal_reward_factor(TupleRef("Gene", 2), acg, focal)
        factor3 = focal_reward_factor(TupleRef("Gene", 3), acg, focal)
        assert factor2 > factor3 > 1.0

    def test_multiple_focals_compound(self, acg):
        focal = [TupleRef("Gene", 1), TupleRef("Gene", 3)]
        # Gene#2 connects to f1 only; factor with two focals where one is
        # not adjacent must equal the single-focal factor.
        single = focal_reward_factor(TupleRef("Gene", 2), acg, [TupleRef("Gene", 1)])
        both = focal_reward_factor(TupleRef("Gene", 2), acg, focal)
        assert both == pytest.approx(single)

    def test_tuple_outside_acg_unchanged(self, acg):
        confidences = {TupleRef("Gene", 99): 0.7}
        adjusted = apply_focal_adjustment(confidences, acg, [TupleRef("Gene", 1)])
        assert adjusted[TupleRef("Gene", 99)] == 0.7

    def test_no_focal_identity(self, acg):
        confidences = {TupleRef("Gene", 2): 0.4}
        assert apply_focal_adjustment(confidences, acg, []) == confidences

    def test_input_not_mutated(self, acg):
        confidences = {TupleRef("Gene", 2): 0.4}
        apply_focal_adjustment(confidences, acg, [TupleRef("Gene", 1)])
        assert confidences[TupleRef("Gene", 2)] == 0.4

    def test_integrated_into_identify(self, engine, acg):
        plain = identify_related_tuples(_queries(), engine)
        adjusted = identify_related_tuples(
            _queries(), engine, acg=acg, focal=[TupleRef("Gene", 1)]
        )
        # Gene#5 (yaaB) has no focal edge; Gene#2 has a strong one — the
        # relative gap must widen under adjustment.
        gap_plain = plain.confidence_of(TupleRef("Gene", 2)) - plain.confidence_of(
            TupleRef("Gene", 5)
        )
        gap_adjusted = adjusted.confidence_of(
            TupleRef("Gene", 2)
        ) - adjusted.confidence_of(TupleRef("Gene", 5))
        assert gap_adjusted >= gap_plain


class TestSharedExecutor:
    def test_results_identical_to_isolated(self, engine):
        meta = build_figure1_meta()
        text = "We examined genes JW0014 and also grpC with the family F1 set"
        generation = generate_queries(text, meta, NebulaConfig())
        isolated = {
            q.describe(): engine.search(q) for q in generation.queries
        }
        shared = SharedExecutor(engine).search_all(generation.queries)
        assert set(isolated) == set(shared)
        for label in isolated:
            iso = {(t.ref, round(t.confidence, 9)) for t in isolated[label].tuples}
            shr = {(t.ref, round(t.confidence, 9)) for t in shared[label].tuples}
            assert iso == shr

    def test_sharing_reduces_statements(self, engine):
        queries = [
            KeywordQuery(("gene", "JW0013"), label="a"),
            KeywordQuery(("gene", "JW0014"), label="b"),
            KeywordQuery(("gene", "JW0015"), label="c"),
        ]
        executor = SharedExecutor(engine)
        executor.search_all(queries)
        stats = executor.last_stats
        assert stats.total_sql > stats.executed_statements
        assert stats.batched_statements >= 1

    def test_duplicate_queries_share(self, engine):
        queries = [
            KeywordQuery(("gene", "JW0013"), label="a"),
            KeywordQuery(("gene", "JW0013"), label="b"),
        ]
        executor = SharedExecutor(engine)
        results = executor.search_all(queries)
        assert results["a"].refs == results["b"].refs

    def test_scope_respected(self, engine):
        queries = [
            KeywordQuery(("gene", "JW0013"), label="a"),
            KeywordQuery(("gene", "JW0014"), label="b"),
        ]
        scope = SearchScope.from_refs([TupleRef("Gene", 2)])
        results = SharedExecutor(engine).search_all(queries, scope=scope)
        assert results["a"].refs == []
        assert results["b"].refs == [TupleRef("Gene", 2)]

    def test_executor_plugs_into_identify(self, engine):
        executor = SharedExecutor(engine)
        plain = identify_related_tuples(_queries(), engine)
        shared = identify_related_tuples(_queries(), engine, executor=executor)
        assert plain.refs == shared.refs
