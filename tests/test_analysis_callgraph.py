"""Tests for the interprocedural core: module/call graphs and summaries.

Covers the resolution shapes the concurrency rules depend on — aliased
imports, methods called via ``self``, module-level functions, virtual
dispatch over subclasses, and the unknown-callee fallback — plus the
per-function lock/blocking summaries.
"""

import textwrap

from repro.analysis.astcache import load_module
from repro.analysis.graphs import build_project_graph, module_name_for_path
from repro.analysis.interproc import SqlFlowIndex
from repro.analysis.summaries import summarize_function


def _graph(tmp_path, files):
    modules = []
    for name, source in files.items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        modules.append(load_module(str(path)))
    return build_project_graph(modules)


def _sites(graph, qualname):
    return graph.functions[qualname].call_sites


def _candidates(graph, qualname):
    out = []
    for site in _sites(graph, qualname):
        out.extend(site.candidates)
    return out


class TestModuleNaming:
    def test_package_walk(self, tmp_path):
        pkg = tmp_path / "pkg" / "sub"
        pkg.mkdir(parents=True)
        (tmp_path / "pkg" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("x = 1\n")
        assert module_name_for_path(str(pkg / "mod.py")) == "pkg.sub.mod"

    def test_bare_file(self, tmp_path):
        path = tmp_path / "standalone.py"
        path.write_text("x = 1\n")
        assert module_name_for_path(str(path)) == "standalone"


class TestCallResolution:
    def test_module_level_function(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "m.py": """
                def helper():
                    return 1

                def caller():
                    return helper()
                """
            },
        )
        assert _candidates(graph, "m:caller") == ["m:helper"]

    def test_aliased_import(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "util.py": """
                def build():
                    return "x"
                """,
                "m.py": """
                import util as u
                from util import build as make

                def one():
                    return u.build()

                def two():
                    return make()
                """,
            },
        )
        assert _candidates(graph, "m:one") == ["util:build"]
        assert _candidates(graph, "m:two") == ["util:build"]

    def test_method_via_self(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "m.py": """
                class Box:
                    def get(self):
                        return self._load()

                    def _load(self):
                        return 1
                """
            },
        )
        assert _candidates(graph, "m:Box.get") == ["m:Box._load"]

    def test_virtual_dispatch_includes_overrides(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "m.py": """
                class Base:
                    def run(self):
                        return self.step()

                    def step(self):
                        return 0

                class Child(Base):
                    def step(self):
                        return 1
                """
            },
        )
        assert set(_candidates(graph, "m:Base.run")) == {
            "m:Base.step",
            "m:Child.step",
        }

    def test_inherited_method_resolves_to_base(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "m.py": """
                class Base:
                    def step(self):
                        return 0

                class Child(Base):
                    def run(self):
                        return self.step()
                """
            },
        )
        assert "m:Base.step" in _candidates(graph, "m:Child.run")

    def test_unknown_callee_falls_back_to_empty(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "m.py": """
                import os

                def caller(thing):
                    os.getcwd()
                    thing.spin()
                    return external()
                """
            },
        )
        for site in _sites(graph, "m:caller"):
            assert site.candidates == ()

    def test_field_typed_receiver(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "m.py": """
                class Engine:
                    def fire(self):
                        return 1

                class Car:
                    def __init__(self):
                        self._engine = Engine()

                    def drive(self):
                        return self._engine.fire()
                """
            },
        )
        assert _candidates(graph, "m:Car.drive") == ["m:Engine.fire"]

    def test_annotated_param_receiver(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "m.py": """
                class Engine:
                    def fire(self):
                        return 1

                def drive(engine: Engine):
                    return engine.fire()
                """
            },
        )
        assert _candidates(graph, "m:drive") == ["m:Engine.fire"]

    def test_nested_function_not_a_method(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "m.py": """
                class Box:
                    def outer(self):
                        def inner():
                            return 1
                        return inner()
                """
            },
        )
        # The nested def has its own record but is not a class method.
        assert "m:Box.outer.inner" in graph.functions
        assert "inner" not in graph.by_path[
            list(graph.by_path)[0]
        ].classes["Box"].methods
        assert _candidates(graph, "m:Box.outer") == ["m:Box.outer.inner"]


class TestSummaries:
    def test_with_lock_guards_and_pairs(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "m.py": """
                import threading

                class T:
                    def __init__(self):
                        self._a = threading.Lock()
                        self._b = threading.Lock()
                        self._n = 0

                    def both(self):
                        with self._a:
                            with self._b:
                                self._n += 1
                """
            },
        )
        summary = summarize_function(graph.functions["m:T.both"], graph)
        (write,) = summary.field_writes
        assert write.field == "_n"
        assert write.guards == frozenset({"self._a", "self._b"})
        assert ("self._a", "self._b") in {
            (a, b) for a, b, _ in summary.lock_pairs
        }

    def test_untimed_wait_blocks_other_locks_only(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "m.py": """
                import threading

                class T:
                    def __init__(self):
                        self._cond = threading.Condition()
                        self._other = threading.Lock()

                    def wait_clean(self):
                        with self._cond:
                            while True:
                                self._cond.wait()

                    def wait_deadlocky(self):
                        with self._other:
                            with self._cond:
                                while True:
                                    self._cond.wait()
                """
            },
        )
        clean = summarize_function(graph.functions["m:T.wait_clean"], graph)
        (op,) = clean.blocking_ops
        assert op.guards == frozenset()  # own condition exempt
        bad = summarize_function(
            graph.functions["m:T.wait_deadlocky"], graph
        )
        (op,) = bad.blocking_ops
        assert op.guards == frozenset({"self._other"})

    def test_while_test_wait_counts_as_looped(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "m.py": """
                import threading

                class T:
                    def __init__(self):
                        self._cond = threading.Condition()

                    def spin(self):
                        with self._cond:
                            while not self._cond.wait(0.1):
                                pass
                """
            },
        )
        summary = summarize_function(graph.functions["m:T.spin"], graph)
        (wait,) = summary.cond_waits
        assert wait.in_while and wait.has_timeout


class TestSqlFlowIndex:
    def test_returns_unsafe_and_safe(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "m.py": """
                def dirty(name):
                    return f"WHERE n = '{name}'"

                def clean():
                    return "WHERE n = ?"

                def wrapped():
                    return "SELECT 1 " + clean()
                """
            },
        )
        index = SqlFlowIndex.build(graph)
        assert "m:dirty" in index.returns_unsafe
        assert "m:clean" in index.returns_safe
        assert "m:wrapped" in index.returns_safe
        assert "m:wrapped" not in index.returns_unsafe

    def test_sink_param_fixpoint_crosses_hops(self, tmp_path):
        graph = _graph(
            tmp_path,
            {
                "m.py": """
                def run(conn, sql):
                    return conn.execute(sql)

                def forward(conn, query):
                    return run(conn, query)
                """
            },
        )
        index = SqlFlowIndex.build(graph)
        assert index.sink_params["m:run"] == ("sql",)
        assert index.sink_params["m:forward"] == ("query",)
