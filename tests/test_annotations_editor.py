"""Unit tests for the annotation-aware data editor and join propagation."""

import pytest

from repro.annotations.editor import DataEditor
from repro.annotations.engine import AnnotationManager
from repro.annotations.propagation import propagate_join
from repro.annotations.rules import RuleEngine
from repro.errors import StorageError
from repro.search.index import InvertedValueIndex
from repro.types import CellRef, TupleRef

from conftest import build_figure1_connection


@pytest.fixture
def world():
    connection = build_figure1_connection()
    manager = AnnotationManager(connection)
    index = InvertedValueIndex.build(connection, [("Gene", "GID"), ("Gene", "Name")])
    rules = RuleEngine(manager)
    editor = DataEditor(manager, index=index, rules=rules)
    return connection, manager, index, rules, editor


class TestInsert:
    def test_insert_writes_row(self, world):
        connection, manager, index, rules, editor = world
        result = editor.insert(
            "Gene",
            {"GID": "JW0500", "Name": "abcZ", "Length": 700, "Seq": "ACGT",
             "Family": "F2"},
        )
        row = connection.execute(
            "SELECT GID FROM Gene WHERE rowid = ?", (result.ref.rowid,)
        ).fetchone()
        assert row == ("JW0500",)

    def test_insert_maintains_index(self, world):
        connection, manager, index, rules, editor = world
        result = editor.insert(
            "Gene",
            {"GID": "JW0501", "Name": "abcY", "Length": 700, "Seq": "ACGT",
             "Family": "F2"},
        )
        assert index.lookup("JW0501")[0].rowid == result.ref.rowid
        assert index.lookup("abcY")[0].rowid == result.ref.rowid
        assert set(result.indexed_columns) == {"GID", "Name"}

    def test_unindexed_columns_skipped(self, world):
        connection, manager, index, rules, editor = world
        result = editor.insert(
            "Gene",
            {"GID": "JW0502", "Name": "abcX", "Length": 700, "Seq": "ACGT",
             "Family": "F2"},
        )
        assert index.lookup("F2") == ()  # Family not indexed
        assert "Family" not in result.indexed_columns

    def test_insert_fires_rules(self, world):
        connection, manager, index, rules, editor = world
        note = manager.add_annotation("F2 watch list")
        rules.create_rule(note.annotation_id, "Gene", "Family = 'F2'",
                          apply_retroactively=False)
        result = editor.insert(
            "Gene",
            {"GID": "JW0503", "Name": "abcW", "Length": 700, "Seq": "ACGT",
             "Family": "F2"},
        )
        assert len(result.fired_rules) == 1
        assert result.ref in manager.focal_of(note.annotation_id)

    def test_insert_without_index(self, world):
        connection, manager, index, rules, _ = world
        editor = DataEditor(manager)
        result = editor.insert(
            "Gene",
            {"GID": "JW0504", "Name": "abcV", "Length": 700, "Seq": "ACGT",
             "Family": "F2"},
        )
        assert result.indexed_columns == []

    def test_invalid_column_rejected(self, world):
        *_, editor = world
        with pytest.raises(Exception):
            editor.insert("Gene", {"Nope": 1})


class TestDelete:
    def test_delete_detaches_annotations(self, world):
        connection, manager, index, rules, editor = world
        note = manager.add_annotation("row note", attach_to=[CellRef("Gene", 2)])
        detached = editor.delete(TupleRef("Gene", 2))
        assert detached == 1
        assert manager.focal_of(note.annotation_id) == ()
        assert connection.execute(
            "SELECT COUNT(*) FROM Gene WHERE rowid = 2"
        ).fetchone()[0] == 0

    def test_delete_refuses_with_pending_predictions(self, world):
        connection, manager, index, rules, editor = world
        note = manager.add_annotation("note", attach_to=[CellRef("Gene", 1)])
        manager.attach_predicted(note.annotation_id, CellRef("Gene", 3), 0.6)
        with pytest.raises(StorageError):
            editor.delete(TupleRef("Gene", 3))
        # force bypasses the refusal
        assert editor.delete(TupleRef("Gene", 3), force=True) == 1

    def test_delete_leaves_column_level_annotations(self, world):
        connection, manager, index, rules, editor = world
        column_note = manager.add_annotation(
            "col note", attach_to=[CellRef("Gene", None, "Family")]
        )
        editor.delete(TupleRef("Gene", 4))
        remaining = manager.store.attachments_of(column_note.annotation_id)
        assert len(remaining) == 1


class TestPropagateJoin:
    def test_join_inherits_both_sides(self, world):
        connection, manager, *_ = world
        gene_note = manager.add_annotation("gene note", attach_to=[CellRef("Gene", 1)])
        protein_note = manager.add_annotation(
            "protein note", attach_to=[CellRef("Protein", 1)]
        )
        rows = propagate_join(
            connection, "Protein", "Gene", on="l.GID = r.GID",
            where="l.PID = ?", parameters=("P00001",),
        )
        assert len(rows) == 1
        contents = {text for text, _ in rows[0].annotations}
        assert contents == {"gene note", "protein note"}
        assert rows[0].refs == (TupleRef("Protein", 1), TupleRef("Gene", 1))

    def test_join_without_annotations(self, world):
        connection, *_ = world
        rows = propagate_join(connection, "Protein", "Gene", on="l.GID = r.GID")
        assert len(rows) == 3  # three proteins, each joining one gene
        assert all(row.annotations == () for row in rows)

    def test_join_empty_answer(self, world):
        connection, *_ = world
        rows = propagate_join(
            connection, "Protein", "Gene", on="l.GID = r.GID",
            where="l.PID = 'NOPE'",
        )
        assert rows == []

    def test_join_column_level_annotations_apply(self, world):
        connection, manager, *_ = world
        manager.add_annotation(
            "family column note", attach_to=[CellRef("Gene", None, "Family")]
        )
        rows = propagate_join(
            connection, "Protein", "Gene", on="l.GID = r.GID",
            where="l.PID = ?", parameters=("P00002",),
        )
        contents = {text for text, _ in rows[0].annotations}
        assert "family column note" in contents
