"""Unit tests for the AnnotationManager facade."""

import pytest

from repro.annotations.engine import AnnotationManager
from repro.errors import UnknownTupleError
from repro.types import CellRef, TupleRef

from conftest import build_figure1_connection


@pytest.fixture
def manager():
    return AnnotationManager(build_figure1_connection())


class TestAddAnnotation:
    def test_add_with_focal(self, manager):
        annotation = manager.add_annotation(
            "about grpC", attach_to=[CellRef("Gene", 1)], author="bob"
        )
        assert manager.focal_of(annotation.annotation_id) == (TupleRef("Gene", 1),)

    def test_add_verifies_targets(self, manager):
        with pytest.raises(UnknownTupleError):
            manager.add_annotation("x", attach_to=[CellRef("Gene", 9999)])

    def test_add_without_verification(self, manager):
        annotation = manager.add_annotation(
            "x", attach_to=[CellRef("Gene", 9999)], verify_targets=False
        )
        assert manager.focal_of(annotation.annotation_id) == (TupleRef("Gene", 9999),)

    def test_multi_target_focal_ordered(self, manager):
        annotation = manager.add_annotation(
            "x", attach_to=[CellRef("Gene", 2), CellRef("Protein", 1)]
        )
        assert manager.focal_of(annotation.annotation_id) == (
            TupleRef("Gene", 2),
            TupleRef("Protein", 1),
        )


class TestReads:
    def test_annotations_of_tuple(self, manager):
        a = manager.add_annotation("one", attach_to=[CellRef("Gene", 1)])
        manager.add_annotation("two", attach_to=[CellRef("Gene", 2)])
        found = manager.annotations_of_tuple(TupleRef("Gene", 1))
        assert [x.annotation_id for x in found] == [a.annotation_id]

    def test_predicted_hidden_by_default(self, manager):
        a = manager.add_annotation("one", attach_to=[CellRef("Gene", 1)])
        manager.attach_predicted(a.annotation_id, CellRef("Gene", 2), 0.5)
        assert manager.annotations_of_tuple(TupleRef("Gene", 2)) == []
        shown = manager.annotations_of_tuple(TupleRef("Gene", 2), include_predicted=True)
        assert [x.annotation_id for x in shown] == [a.annotation_id]

    def test_focal_excludes_predicted(self, manager):
        a = manager.add_annotation("one", attach_to=[CellRef("Gene", 1)])
        manager.attach_predicted(a.annotation_id, CellRef("Gene", 2), 0.5)
        assert manager.focal_of(a.annotation_id) == (TupleRef("Gene", 1),)

    def test_annotated_tuples_distinct_ordered(self, manager):
        manager.add_annotation("one", attach_to=[CellRef("Gene", 1), CellRef("Gene", 2)])
        manager.add_annotation("two", attach_to=[CellRef("Gene", 1)])
        assert manager.annotated_tuples() == [TupleRef("Gene", 1), TupleRef("Gene", 2)]

    def test_co_annotation_index(self, manager):
        a = manager.add_annotation("one", attach_to=[CellRef("Gene", 1), CellRef("Gene", 2)])
        b = manager.add_annotation("two", attach_to=[CellRef("Gene", 1)])
        index = manager.co_annotation_index()
        assert index[TupleRef("Gene", 1)] == {a.annotation_id, b.annotation_id}
        assert index[TupleRef("Gene", 2)] == {a.annotation_id}


class TestMaintenance:
    def test_promote_and_discard(self, manager):
        a = manager.add_annotation("one", attach_to=[CellRef("Gene", 1)])
        predicted = manager.attach_predicted(a.annotation_id, CellRef("Gene", 2), 0.5)
        manager.promote_attachment(predicted.attachment_id)
        assert TupleRef("Gene", 2) in manager.focal_of(a.annotation_id)

    def test_discard(self, manager):
        a = manager.add_annotation("one", attach_to=[CellRef("Gene", 1)])
        predicted = manager.attach_predicted(a.annotation_id, CellRef("Gene", 2), 0.5)
        assert manager.discard_attachment(predicted.attachment_id)
        assert manager.pending_predicted(a.annotation_id) == []

    def test_pending_predicted_scoped(self, manager):
        a = manager.add_annotation("one", attach_to=[CellRef("Gene", 1)])
        b = manager.add_annotation("two", attach_to=[CellRef("Gene", 2)])
        manager.attach_predicted(a.annotation_id, CellRef("Gene", 3), 0.5)
        assert len(manager.pending_predicted(a.annotation_id)) == 1
        assert manager.pending_predicted(b.annotation_id) == []
