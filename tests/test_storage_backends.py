"""The storage backend layer: dialect, pool, engines, registry.

The pipeline-facing contract (every sqlite3 call site routed through a
:class:`StorageBackend`) is exercised indirectly by the whole suite —
``NEBULA_BACKEND`` pins the engine it runs on.  This module tests the
layer itself: dialect SQL construction, pool bounding/health/threading,
engine semantics (read-only readers, shared-cache visibility, raw
adapter ownership), and the by-name registry.
"""

from __future__ import annotations

import sqlite3
import threading

import pytest

from conftest import build_figure1_connection, build_figure1_meta
from repro import Nebula, NebulaConfig
from repro.errors import ConfigurationError, PoolExhaustedError, StorageError
from repro.storage import (
    SQLITE_DIALECT,
    ConnectionPool,
    Dialect,
    SqliteFileBackend,
    SqliteMemoryBackend,
    StorageBackend,
    get_backend,
    register_backend,
    wrap_connection,
)
from repro.storage.backends import RawConnectionBackend, as_backend
from repro.storage.registry import available_backends

# ----------------------------------------------------------------------
# Dialect
# ----------------------------------------------------------------------


class TestDialect:
    def test_placeholders(self):
        assert SQLITE_DIALECT.placeholders(3) == "?, ?, ?"
        assert SQLITE_DIALECT.placeholders(1) == "?"
        assert SQLITE_DIALECT.placeholders(0) == ""

    def test_negative_placeholder_count_rejected(self):
        with pytest.raises(ValueError):
            SQLITE_DIALECT.placeholders(-1)

    def test_chunked_respects_max_variables(self):
        narrow = Dialect(max_variables=3)
        chunks = list(narrow.chunked(list(range(8))))
        assert chunks == [[0, 1, 2], [3, 4, 5], [6, 7]]

    def test_chunked_single_chunk_when_under_limit(self):
        assert list(SQLITE_DIALECT.chunked(["a", "b"])) == [["a", "b"]]

    def test_quote_identifier_escapes_quotes(self):
        assert SQLITE_DIALECT.quote_identifier("Gene") == '"Gene"'

    def test_quote_qualified(self):
        assert SQLITE_DIALECT.quote_qualified("Gene", "GID") == '"Gene"."GID"'

    def test_savepoint_statements_quote_the_name(self):
        assert SQLITE_DIALECT.savepoint_statement("sp1") == 'SAVEPOINT "sp1"'
        assert (
            SQLITE_DIALECT.release_statement("sp1") == 'RELEASE SAVEPOINT "sp1"'
        )
        assert (
            SQLITE_DIALECT.rollback_statement("sp1")
            == 'ROLLBACK TO SAVEPOINT "sp1"'
        )

    def test_frozen(self):
        with pytest.raises(Exception):
            SQLITE_DIALECT.placeholder = "%s"  # type: ignore[misc]


# ----------------------------------------------------------------------
# Connection pool
# ----------------------------------------------------------------------


def _memory_factory():
    return sqlite3.connect(":memory:", check_same_thread=False)


class TestConnectionPool:
    def test_lease_round_trip_reuses_connections(self):
        pool = ConnectionPool(_memory_factory, size=2)
        with pool.acquire() as connection:
            assert connection.execute("SELECT 1").fetchone() == (1,)
        with pool.acquire() as connection:
            connection.execute("SELECT 1")
        assert pool.stats.created == 1
        assert pool.stats.reused == 1
        assert pool.idle_count == 1
        pool.close()

    def test_bounded_acquire_raises_when_exhausted(self):
        pool = ConnectionPool(_memory_factory, size=1, timeout=0.05)
        lease = pool.acquire()
        with pytest.raises(PoolExhaustedError):
            pool.acquire()
        lease.release()
        pool.acquire().release()  # slot came back
        pool.close()

    def test_release_is_idempotent(self):
        pool = ConnectionPool(_memory_factory, size=1)
        lease = pool.acquire()
        lease.release()
        lease.release()
        assert pool.leased_count == 0
        assert pool.idle_count == 1
        pool.close()

    def test_closed_pool_refuses_acquire(self):
        pool = ConnectionPool(_memory_factory, size=1)
        pool.close()
        with pytest.raises(StorageError):
            pool.acquire()

    def test_health_check_recycles_poisoned_idle_connection(self):
        pool = ConnectionPool(_memory_factory, size=1)
        lease = pool.acquire()
        lease.connection.close()  # poison the handle, then return it
        lease.release()
        with pool.acquire() as connection:
            assert connection.execute("SELECT 1").fetchone() == (1,)
        assert pool.stats.recycled == 1
        assert pool.stats.created == 2
        pool.close()

    def test_invalid_size_rejected(self):
        with pytest.raises(StorageError):
            ConnectionPool(_memory_factory, size=0)

    def test_concurrent_leases_stay_bounded(self):
        pool = ConnectionPool(_memory_factory, size=2, timeout=5.0)
        errors = []

        def worker():
            try:
                for _ in range(25):
                    with pool.acquire() as connection:
                        connection.execute("SELECT 1").fetchone()
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert pool.stats.created <= pool.size
        assert pool.stats.acquired == 150
        assert pool.leased_count == 0
        pool.close()


# ----------------------------------------------------------------------
# File backend
# ----------------------------------------------------------------------


class TestSqliteFileBackend:
    def test_primary_persists_to_path(self, tmp_path):
        path = str(tmp_path / "data.db")
        with SqliteFileBackend(path) as backend:
            backend.primary.execute("CREATE TABLE t (x)")
            backend.primary.execute("INSERT INTO t VALUES (7)")
            backend.primary.commit()
        probe = sqlite3.connect(path)
        assert probe.execute("SELECT x FROM t").fetchone() == (7,)
        probe.close()

    def test_reader_sees_committed_data_and_is_read_only(self, tmp_path):
        with SqliteFileBackend(str(tmp_path / "data.db")) as backend:
            backend.primary.execute("CREATE TABLE t (x)")
            backend.primary.execute("INSERT INTO t VALUES (1)")
            backend.primary.commit()
            assert backend.supports_concurrent_reads
            reader = backend.open_reader()
            assert reader is not None
            assert reader.execute("SELECT x FROM t").fetchone() == (1,)
            with pytest.raises(sqlite3.OperationalError):
                reader.execute("INSERT INTO t VALUES (2)")
            reader.close()

    def test_pooled_connection_shares_the_database(self, tmp_path):
        with SqliteFileBackend(str(tmp_path / "data.db")) as backend:
            backend.primary.execute("CREATE TABLE t (x)")
            backend.primary.commit()
            with backend.acquire() as connection:
                connection.execute("INSERT INTO t VALUES (3)")
                connection.commit()
            count = backend.primary.execute("SELECT COUNT(*) FROM t").fetchone()
            assert count == (1,)

    def test_closed_backend_refuses_use(self, tmp_path):
        backend = SqliteFileBackend(str(tmp_path / "data.db"))
        backend.primary  # materialize
        backend.close()
        with pytest.raises(StorageError):
            backend.primary
        with pytest.raises(StorageError):
            backend.open_reader()
        backend.close()  # idempotent

    def test_empty_path_rejected(self):
        with pytest.raises(StorageError):
            SqliteFileBackend("")


# ----------------------------------------------------------------------
# WAL concurrency (what the annotation service builds on)
# ----------------------------------------------------------------------


class TestWalConcurrency:
    def test_wal_is_the_default_journal_mode(self, tmp_path):
        with SqliteFileBackend(str(tmp_path / "w.db")) as backend:
            mode = backend.primary.execute("PRAGMA journal_mode").fetchone()[0]
            assert mode == "wal"

    def test_journal_mode_knob(self, tmp_path):
        with SqliteFileBackend(
            str(tmp_path / "d.db"), journal_mode="delete"
        ) as backend:
            mode = backend.primary.execute("PRAGMA journal_mode").fetchone()[0]
            assert mode == "delete"

    def test_unknown_journal_mode_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="journal mode"):
            SqliteFileBackend(str(tmp_path / "x.db"), journal_mode="bogus")

    def test_negative_busy_timeout_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="busy_timeout"):
            SqliteFileBackend(str(tmp_path / "x.db"), busy_timeout=-1.0)

    def test_busy_timeout_applied_to_connections(self, tmp_path):
        with SqliteFileBackend(
            str(tmp_path / "b.db"), busy_timeout=2.5
        ) as backend:
            millis = backend.primary.execute("PRAGMA busy_timeout").fetchone()[0]
            assert millis == 2500
            reader = backend.open_reader()
            assert reader is not None
            assert reader.execute("PRAGMA busy_timeout").fetchone()[0] == 2500
            reader.close()

    def test_reader_progresses_inside_open_write_transaction(self, tmp_path):
        """The WAL property the concurrent service is built on: a reader
        completes (on the pre-write snapshot) while the primary holds an
        open, uncommitted write transaction."""
        with SqliteFileBackend(str(tmp_path / "wal.db")) as backend:
            primary = backend.primary
            primary.execute("CREATE TABLE t (x)")
            primary.execute("INSERT INTO t VALUES (1)")
            primary.commit()
            primary.execute("BEGIN")
            primary.execute("INSERT INTO t VALUES (2)")
            assert primary.in_transaction
            seen = []

            def read():
                reader = backend.open_reader()
                try:
                    rows = reader.execute(
                        "SELECT COUNT(*) FROM t"
                    ).fetchone()
                    seen.append(rows[0])
                finally:
                    reader.close()

            thread = threading.Thread(target=read)
            thread.start()
            thread.join(5.0)
            assert not thread.is_alive(), "reader blocked on the writer"
            assert seen == [1]  # snapshot view: committed data only
            primary.commit()
            probe = backend.open_reader()
            assert probe.execute("SELECT COUNT(*) FROM t").fetchone() == (2,)
            probe.close()

    def test_checkpoint_truncates_the_wal(self, tmp_path):
        path = tmp_path / "cp.db"
        with SqliteFileBackend(str(path)) as backend:
            backend.primary.execute("CREATE TABLE t (x)")
            backend.primary.executemany(
                "INSERT INTO t VALUES (?)", [(i,) for i in range(200)]
            )
            backend.primary.commit()
            wal = path.with_name(path.name + "-wal")
            assert wal.exists() and wal.stat().st_size > 0
            backend.checkpoint()
            assert wal.stat().st_size == 0

    def test_checkpoint_is_a_noop_outside_wal(self, tmp_path):
        with SqliteFileBackend(
            str(tmp_path / "nw.db"), journal_mode="delete"
        ) as backend:
            backend.primary.execute("CREATE TABLE t (x)")
            backend.primary.commit()
            backend.checkpoint()  # must not raise


# ----------------------------------------------------------------------
# Memory backend
# ----------------------------------------------------------------------


class TestSqliteMemoryBackend:
    def test_shared_cache_visibility_across_handles(self):
        with SqliteMemoryBackend() as backend:
            backend.primary.execute("CREATE TABLE t (x)")
            backend.primary.execute("INSERT INTO t VALUES (9)")
            backend.primary.commit()
            reader = backend.open_reader()
            assert reader is not None
            assert reader.execute("SELECT x FROM t").fetchone() == (9,)
            reader.close()
            with backend.acquire() as connection:
                assert connection.execute("SELECT x FROM t").fetchone() == (9,)

    def test_two_backends_are_isolated(self):
        with SqliteMemoryBackend() as first, SqliteMemoryBackend() as second:
            first.primary.execute("CREATE TABLE only_here (x)")
            first.primary.commit()
            with pytest.raises(sqlite3.OperationalError):
                second.primary.execute("SELECT * FROM only_here")

    def test_supports_concurrent_reads(self):
        with SqliteMemoryBackend() as backend:
            assert backend.supports_concurrent_reads
        assert not backend.supports_concurrent_reads


# ----------------------------------------------------------------------
# Raw-connection adapter
# ----------------------------------------------------------------------


class TestRawConnectionBackend:
    def test_file_backed_connection_regains_readers(self, tmp_path):
        path = str(tmp_path / "raw.db")
        connection = sqlite3.connect(path)
        connection.execute("CREATE TABLE t (x)")
        connection.commit()
        backend = wrap_connection(connection)
        assert backend.path is not None
        assert backend.supports_concurrent_reads
        reader = backend.open_reader()
        assert reader is not None
        assert reader.execute("SELECT COUNT(*) FROM t").fetchone() == (0,)
        reader.close()
        backend.close()
        # The wrapped connection belongs to its creator and stays usable.
        assert connection.execute("SELECT 1").fetchone() == (1,)
        connection.close()

    def test_private_memory_connection_degrades_gracefully(self):
        connection = sqlite3.connect(":memory:")
        backend = wrap_connection(connection)
        assert backend.path is None
        assert not backend.supports_concurrent_reads
        assert backend.open_reader() is None
        with pytest.raises(StorageError):
            backend.connect()
        backend.close()
        connection.close()

    def test_as_backend_coercions(self):
        connection = sqlite3.connect(":memory:")
        coerced = as_backend(connection)
        assert isinstance(coerced, RawConnectionBackend)
        assert coerced.primary is connection
        with SqliteMemoryBackend() as backend:
            assert as_backend(backend) is backend
        with pytest.raises(StorageError):
            as_backend(42)
        connection.close()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class TestRegistry:
    def test_bundled_backends_registered(self):
        names = available_backends()
        assert "sqlite-file" in names
        assert "sqlite-memory" in names

    def test_get_backend_by_name(self, tmp_path):
        with get_backend("sqlite-file", path=str(tmp_path / "a.db")) as backend:
            assert backend.name == "sqlite-file"
            assert isinstance(backend, StorageBackend)
        with get_backend("sqlite-memory") as backend:
            assert backend.name == "sqlite-memory"

    def test_unknown_name_lists_registered(self):
        with pytest.raises(StorageError, match="sqlite-file"):
            get_backend("postgres")

    def test_file_backend_requires_path(self):
        with pytest.raises(StorageError, match="path"):
            get_backend("sqlite-file")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(StorageError):
            register_backend("sqlite-file", lambda **kw: None)

    def test_custom_engine_registration(self):
        register_backend(
            "test-engine",
            lambda *, path=None, pool_size=4: SqliteMemoryBackend(
                pool_size=pool_size
            ),
            replace=True,
        )
        with get_backend("test-engine", pool_size=2) as backend:
            assert backend.pool_size == 2


# ----------------------------------------------------------------------
# Config knobs
# ----------------------------------------------------------------------


class TestConfigKnobs:
    def test_defaults(self):
        config = NebulaConfig()
        assert config.storage_backend == "sqlite-file"
        assert config.pool_size == 4

    def test_pool_size_validated(self):
        with pytest.raises(ConfigurationError):
            NebulaConfig(pool_size=0)  # nebula-lint: ignore[NBL003]

    def test_storage_backend_validated(self):
        with pytest.raises(ConfigurationError):
            NebulaConfig(storage_backend="")

    def test_journal_mode_and_busy_timeout_defaults(self):
        config = NebulaConfig()
        assert config.journal_mode == "wal"
        assert config.busy_timeout == 5.0

    def test_journal_mode_validated(self):
        with pytest.raises(ConfigurationError):
            NebulaConfig(journal_mode="bogus")  # nebula-lint: ignore[NBL003]

    def test_busy_timeout_validated(self):
        with pytest.raises(ConfigurationError):
            NebulaConfig(busy_timeout=-0.1)  # nebula-lint: ignore[NBL003]

    def test_registry_forwards_journal_knobs(self, tmp_path):
        with get_backend(
            "sqlite-file",
            path=str(tmp_path / "k.db"),
            journal_mode="truncate",
            busy_timeout=1.0,
        ) as backend:
            assert backend.journal_mode == "truncate"
            assert backend.busy_timeout == 1.0
        # The memory factory ignores what it does not need.
        with get_backend("sqlite-memory", journal_mode="wal") as backend:
            assert backend.name == "sqlite-memory"


# ----------------------------------------------------------------------
# Engine parity: the same ingestion on both engines
# ----------------------------------------------------------------------


def _ingest_on(backend) -> list:
    """Run one figure-1 ingestion through ``backend`` and distill the
    report down to comparable (ref, decision) facts."""
    build_figure1_connection(backend.primary)
    nebula = Nebula(
        backend,
        build_figure1_meta(),
        NebulaConfig(epsilon=0.6, beta_lower=0.01, beta_upper=0.999),
    )
    report = nebula.insert_annotation(
        "We examined genes JW0014, and later saw yaaB too.", attach_to=[]
    )
    facts = sorted(
        (str(task.ref), round(task.confidence, 9), task.decision.value)
        for task in report.tasks
    )
    nebula.close()
    return facts


class TestEngineParity:
    def test_memory_backend_matches_file_backend(self, tmp_path):
        with get_backend("sqlite-file", path=str(tmp_path / "p.db")) as file_b:
            file_facts = _ingest_on(file_b)
        with get_backend("sqlite-memory") as memory_b:
            memory_facts = _ingest_on(memory_b)
        assert file_facts  # the annotation must produce candidate tasks
        assert file_facts == memory_facts
