"""Behavioral tests for facade details not covered elsewhere."""

import pytest

from repro import Nebula, NebulaConfig
from repro.core.acg import HopProfile
from repro.core.shared_execution import SharedExecutionStats
from repro.datagen.workload import WorkloadSpec, generate_workload

from conftest import build_figure1_connection, build_figure1_meta


@pytest.fixture
def nebula():
    return Nebula(build_figure1_connection(), build_figure1_meta(), NebulaConfig())


class TestRadiusSelection:
    def test_profile_guided_radius(self, nebula):
        # Seed the profile: 95% of history within 2 hops.
        for hops in [1] * 80 + [2] * 15 + [3] * 5:
            nebula.profile.record(hops)
        # Seed a tiny ACG so spreading has something to hop over.
        from repro.types import TupleRef

        nebula.acg.add_attachment(900, TupleRef("Gene", 1))
        nebula.acg.add_attachment(900, TupleRef("Gene", 2))
        report = nebula.analyze(
            "gene JW0014 here", focal=[TupleRef("Gene", 1)], use_spreading=True
        )
        assert report.radius == nebula.profile.select_k(
            nebula.config.target_recall
        )

    def test_explicit_radius_wins(self, nebula):
        from repro.types import TupleRef

        nebula.acg.add_attachment(900, TupleRef("Gene", 1))
        nebula.acg.add_attachment(900, TupleRef("Gene", 2))
        report = nebula.analyze(
            "gene JW0014 here", focal=[TupleRef("Gene", 1)],
            use_spreading=True, radius=5,
        )
        assert report.radius == 5

    def test_fallback_radius_without_profile(self, nebula):
        from repro.types import TupleRef

        nebula.acg.add_attachment(900, TupleRef("Gene", 1))
        nebula.acg.add_attachment(900, TupleRef("Gene", 2))
        report = nebula.analyze(
            "gene JW0014 here", focal=[TupleRef("Gene", 1)], use_spreading=True
        )
        assert report.radius == nebula.config.spreading_hops


class TestCommandIntegration:
    def test_list_pending_via_command(self, nebula):
        tight = Nebula(
            nebula.connection,
            nebula.meta,
            NebulaConfig(beta_lower=0.01, beta_upper=0.999),
        )
        tight.insert_annotation(
            "We examined genes JW0014, and later saw yaaB too.", attach_to=[]
        )
        result = tight.execute_command("LIST PENDING")
        assert result.command == "LIST PENDING"
        assert len(result.rows) == len(tight.pending_tasks())

    def test_reject_via_command(self, nebula):
        tight = Nebula(
            nebula.connection,
            nebula.meta,
            NebulaConfig(beta_lower=0.01, beta_upper=0.999),
        )
        report = tight.insert_annotation(
            "We examined genes JW0014, and later saw yaaB too.", attach_to=[]
        )
        pending = tight.pending_tasks(report.annotation_id)
        if pending:
            result = tight.execute_command(f"REJECT ATTACHMENT {pending[0].task_id}")
            assert "rejected" in result.message
            assert tight.pending_tasks(report.annotation_id) == pending[1:]


class TestSearchableColumnDedup:
    def test_columns_unique_even_with_overlapping_concepts(self, nebula):
        # Gene and Gene Family both live on the Gene table; GID appears in
        # multiple equivalents — the engine must index each column once.
        columns = nebula._searchable_columns()
        assert len(columns) == len(set(columns))


class TestSharedExecutionStats:
    def test_saved_statements_accounting(self):
        stats = SharedExecutionStats(total_sql=10, executed_statements=4)
        assert stats.saved_statements == 6


class TestHopProfileEdges:
    def test_as_rows_with_large_k_max(self):
        profile = HopProfile()
        profile.record(1)
        rows = profile.as_rows(k_max=4)
        assert [r[0] for r in rows] == [0, 1, 2, 3, 4]
        assert rows[1][2] == 1.0

    def test_as_rows_empty(self):
        assert HopProfile().as_rows() == []


class TestWorkloadDoesNotTouchDatabase:
    def test_publication_table_unchanged(self, bio_db):
        before = bio_db.connection.execute(
            "SELECT COUNT(*) FROM Publication"
        ).fetchone()[0]
        annotations_before = bio_db.manager.store.count_annotations()
        generate_workload(bio_db, WorkloadSpec(seed=71))
        after = bio_db.connection.execute(
            "SELECT COUNT(*) FROM Publication"
        ).fetchone()[0]
        assert after == before
        assert bio_db.manager.store.count_annotations() == annotations_before


class TestTextStyleDiversity:
    def test_all_head_styles_occur(self, bio_db):
        from repro.datagen.text import ReferenceStyle

        workload = generate_workload(bio_db, WorkloadSpec(seed=73))
        styles = {
            r.style
            for a in workload.annotations
            for r in a.references
        }
        assert ReferenceStyle.TYPE2 in styles
        assert ReferenceStyle.BARE in styles
        # TYPE1/TYPE3 appear with 15% probability each over 60+ sentences.
        assert ReferenceStyle.TYPE1 in styles or ReferenceStyle.TYPE3 in styles
