"""Tests for dataset statistics, workload serialization, and the CLI."""

import json
import sqlite3

import pytest

from repro.cli import build_parser, main
from repro.datagen.stats import collect_stats
from repro.datagen.workload import AnnotationWorkload, WorkloadSpec, generate_workload
from repro.annotations.engine import AnnotationManager
from repro.types import CellRef

from conftest import build_figure1_connection


class TestCollectStats:
    def test_counts(self):
        connection = build_figure1_connection()
        manager = AnnotationManager(connection)
        a = manager.add_annotation("x", attach_to=[CellRef("Gene", 1), CellRef("Gene", 2)])
        manager.add_annotation("y", attach_to=[CellRef("Gene", 2)])
        manager.attach_predicted(a.annotation_id, CellRef("Gene", 3), 0.6)
        stats = collect_stats(connection)
        assert stats.table_rows["Gene"] == 7
        assert stats.annotations == 2
        assert stats.true_attachments == 3
        assert stats.predicted_attachments == 1
        assert stats.acg_nodes == 2  # Gene#1 and Gene#2 (true edges only)
        assert stats.acg_edges == 1

    def test_degree_stats(self):
        connection = build_figure1_connection()
        manager = AnnotationManager(connection)
        manager.add_annotation("x", attach_to=[CellRef("Gene", 1), CellRef("Gene", 2)])
        manager.add_annotation("y", attach_to=[CellRef("Gene", 2)])
        stats = collect_stats(connection)
        lo, mean, hi = stats.annotation_degree
        assert (lo, hi) == (1, 2)
        assert mean == pytest.approx(1.5)

    def test_quality_metrics_with_ideal(self):
        connection = build_figure1_connection()
        manager = AnnotationManager(connection)
        a = manager.add_annotation("x", attach_to=[CellRef("Gene", 1)])
        from repro.types import TupleRef

        ideal = frozenset(
            {(a.annotation_id, TupleRef("Gene", 1)),
             (a.annotation_id, TupleRef("Gene", 2))}
        )
        stats = collect_stats(connection, ideal_edges=ideal)
        assert stats.f_n == pytest.approx(0.5)
        assert stats.f_p == 0.0

    def test_lines_render(self):
        connection = build_figure1_connection()
        AnnotationManager(connection)
        lines = collect_stats(connection).lines()
        assert any("Gene: 7 rows" in line for line in lines)
        assert any(line.startswith("ACG:") for line in lines)


class TestWorkloadSerialization:
    def test_round_trip(self, bio_db):
        workload = generate_workload(bio_db, WorkloadSpec(seed=31))
        payload = workload.to_dict()
        restored = AnnotationWorkload.from_dict(json.loads(json.dumps(payload)))
        assert len(restored) == len(workload)
        for original, loaded in zip(workload.annotations, restored.annotations):
            assert original.label == loaded.label
            assert original.text == loaded.text
            assert original.band == loaded.band
            assert original.ideal_refs == loaded.ideal_refs
            assert original.ideal_keywords == loaded.ideal_keywords
            assert original.references == loaded.references

    def test_distortion_identical_after_round_trip(self, bio_db):
        workload = generate_workload(bio_db, WorkloadSpec(seed=31))
        restored = AnnotationWorkload.from_dict(workload.to_dict())
        for original, loaded in zip(workload.annotations, restored.annotations):
            assert original.focal(2, seed=3) == loaded.focal(2, seed=3)


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["generate", "--db", "x.db"])
        assert args.command == "generate"
        args = parser.parse_args(["verify", "--db", "x.db", "--task", "3"])
        assert args.task == 3

    def test_generate_stats_annotate_flow(self, tmp_path, capsys):
        db_path = str(tmp_path / "cli.db")
        workload_path = str(tmp_path / "wl.json")
        assert main([
            "generate", "--db", db_path, "--genes", "60", "--proteins", "36",
            "--publications", "200", "--workload", workload_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "60 genes" in out

        assert main(["stats", "--db", db_path]) == 0
        out = capsys.readouterr().out
        assert "Gene: 60 rows" in out

        assert main([
            "annotate", "--db", db_path,
            "--text", "We examined genes JW0001 in depth.",
            "--attach", "Gene:1", "--author", "cli",
        ]) == 0
        out = capsys.readouterr().out
        assert "inserted" in out

        payload = json.loads(open(workload_path).read())
        assert len(payload["annotations"]) == 60

    def test_pending_and_verify_flow(self, tmp_path, capsys):
        db_path = str(tmp_path / "cli2.db")
        main([
            "generate", "--db", db_path, "--genes", "60", "--proteins", "36",
            "--publications", "200",
        ])
        capsys.readouterr()
        # Two references: the second normalizes below 1.0 -> pending when
        # bounds are the defaults? Default upper is 0.86; craft a weaker
        # backward reference to land between the bounds.
        main([
            "annotate", "--db", db_path,
            "--text", "We examined genes JW0001, and later saw JW0002 too.",
            "--attach", "Gene:5",
        ])
        capsys.readouterr()
        assert main(["pending", "--db", db_path]) == 0
        out = capsys.readouterr().out
        if "task" in out:
            task_id = out.split("task ")[1].split(":")[0]
            assert main(["verify", "--db", db_path, "--task", task_id]) == 0
            assert "verified" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo", "--seed", "3"]) == 0
        assert "inserting" in capsys.readouterr().out

    def test_annotate_trace_flow(self, tmp_path, capsys):
        """annotate --trace persists a trace + metrics; trace and stats
        surface them (the observability PR's CLI acceptance path)."""
        db_path = str(tmp_path / "cli4.db")
        main([
            "generate", "--db", db_path, "--genes", "60", "--proteins", "36",
            "--publications", "200",
        ])
        capsys.readouterr()
        assert main([
            "annotate", "--db", db_path,
            "--text", "We examined genes JW0001 in depth.",
            "--attach", "Gene:1", "--trace",
        ]) == 0
        out = capsys.readouterr().out
        assert "insert_annotation" in out
        assert "stage0.store" in out

        # The trace subcommand reads the persisted JSONL back.
        assert main(["trace", "--db", db_path, "--last", "1"]) == 0
        out = capsys.readouterr().out
        assert "insert_annotation" in out
        assert "stage2.execute" in out

        # --validate accepts the well-formed file...
        assert main(["trace", "--db", db_path, "--validate"]) == 0
        capsys.readouterr()
        # ...and rejects a malformed one.
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["trace", "--path", str(bad), "--validate"]) == 1
        capsys.readouterr()

        # A second traced run accumulates the persisted metrics.
        assert main([
            "annotate", "--db", db_path,
            "--text", "Another look at JW0002 here.",
            "--attach", "Gene:2", "--trace",
        ]) == 0
        capsys.readouterr()
        snapshot = json.load(open(f"{db_path}.metrics.json"))
        assert snapshot["counters"]["nebula_annotations_ingested_total"] == 2

        # stats folds the persisted metrics into its report.
        assert main(["stats", "--db", db_path]) == 0
        out = capsys.readouterr().out
        assert "pipeline metrics" in out
        assert "nebula_annotations_ingested_total = 2" in out

    def test_trace_without_db_or_path_errors(self, capsys):
        assert main(["trace", "--last", "1"]) == 2
        assert "one of --db or --path" in capsys.readouterr().err

    def test_trace_missing_file(self, tmp_path, capsys):
        missing = str(tmp_path / "none.db")
        assert main(["trace", "--db", missing]) == 1
        assert "no trace file" in capsys.readouterr().out
        assert main(["trace", "--db", missing, "--validate"]) == 1
        assert "does not exist" in capsys.readouterr().err

    def test_annotate_bad_ref_format(self, tmp_path):
        db_path = str(tmp_path / "cli3.db")
        main(["generate", "--db", db_path, "--genes", "40", "--proteins", "24",
              "--publications", "100"])
        with pytest.raises(SystemExit):
            main(["annotate", "--db", db_path, "--text", "x", "--attach", "Gene"])


class TestVersioningCli:
    """``repro history`` / ``repro migrate`` / ``annotate --as-of``."""

    @pytest.fixture
    def seeded_db(self, tmp_path):
        db_path = str(tmp_path / "versioned.db")
        main(["generate", "--db", db_path, "--genes", "60", "--proteins", "36",
              "--publications", "200"])
        main(["annotate", "--db", db_path,
              "--text", "We examined genes JW0001 in depth.",
              "--attach", "Gene:1", "--author", "cli"])
        return db_path

    def test_parser_accepts_new_commands(self):
        parser = build_parser()
        args = parser.parse_args(["history", "--db", "x.db", "7"])
        assert args.command == "history" and args.annotation_id == 7
        args = parser.parse_args(["migrate", "down", "--db", "x.db"])
        assert args.action == "down"
        args = parser.parse_args(
            ["annotate", "--db", "x.db", "--text", "t", "--as-of", "3"])
        assert args.as_of == 3

    def test_history_lists_commits_and_versions(self, seeded_db, capsys):
        capsys.readouterr()
        assert main(["history", "--db", seeded_db]) == 0
        out = capsys.readouterr().out
        assert "newest commits (head=" in out
        assert "ingest" in out
        assert "author=cli" in out

        assert main(["history", "--db", seeded_db, "1"]) == 0
        out = capsys.readouterr().out
        assert "annotation 1:" in out
        assert "insert" in out

    def test_history_unknown_annotation(self, seeded_db, capsys):
        capsys.readouterr()
        assert main(["history", "--db", seeded_db, "999"]) == 1
        assert "no logged versions" in capsys.readouterr().err

    def test_migrate_roundtrip(self, seeded_db, capsys):
        capsys.readouterr()
        assert main(["migrate", "status", "--db", seeded_db]) == 0
        out = capsys.readouterr().out
        assert "current revision: 0003" in out

        assert main(["migrate", "down", "--db", seeded_db]) == 0
        assert "reverted 0003, 0002" in capsys.readouterr().out

        # status now reports pending work via the exit code.
        assert main(["migrate", "status", "--db", seeded_db]) == 1
        out = capsys.readouterr().out
        assert "pending 0002" in out and "pending 0003" in out

        assert main(["migrate", "up", "--db", seeded_db]) == 0
        assert "now at 0003" in capsys.readouterr().out

        # The annotation survived the roundtrip, history rebuilt from head.
        assert main(["history", "--db", seeded_db, "1"]) == 0
        out = capsys.readouterr().out
        assert "backfill" in out or "insert" in out

    @staticmethod
    def _head(db_path, capsys):
        assert main(["history", "--db", db_path]) == 0
        out = capsys.readouterr().out
        return int(out.split("head=")[1].split(")")[0])

    def test_annotate_as_of_dry_run(self, seeded_db, capsys):
        capsys.readouterr()
        head = self._head(seeded_db, capsys)
        assert main(["annotate", "--db", seeded_db,
                     "--text", "Genes JW0002 and JW0001 interact.",
                     "--as-of", str(head)]) == 0
        out = capsys.readouterr().out
        assert f"historical analysis at commit {head}" in out
        assert "nothing persisted" in out
        # The dry run added no commit.
        assert self._head(seeded_db, capsys) == head

    def test_annotate_as_of_unknown_commit(self, seeded_db, capsys):
        capsys.readouterr()
        assert main(["annotate", "--db", seeded_db,
                     "--text", "x", "--as-of", "999999"]) == 2
        assert "unknown commit 999999" in capsys.readouterr().err
