"""Tests for NBL009–NBL012 and interprocedural NBL001.

Each rule is exercised against its deliberately-buggy fixture module
under ``tests/fixtures/concurrency/`` plus a clean twin; the
interprocedural NBL001 corpus additionally proves the PR-3
per-statement resolver misses what the new layer catches.
"""

import os
import textwrap

import pytest

from repro.analysis import analyze_paths
from repro.analysis.astcache import load_module
from repro.analysis.graphs import build_project_graph
from repro.analysis.rules import ModuleContext, check_sql_safety

FIXTURES = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "fixtures", "concurrency"
)


def fixture(name):
    return os.path.join(FIXTURES, name)


def lint(path, rules):
    return analyze_paths([path], rules=rules)


class TestLockDiscipline:
    def test_flags_unguarded_write_of_guarded_field(self):
        findings = lint(fixture("bad_lock_discipline.py"), ["NBL009"])
        assert [f.rule_id for f in findings] == ["NBL009"]
        (finding,) = findings
        assert "_pending" in finding.message
        assert finding.function == "Tally.reset"

    def test_single_writer_field_is_exempt(self):
        findings = lint(fixture("bad_lock_discipline.py"), ["NBL009"])
        assert all("_total" not in f.message for f in findings)

    def test_flags_inconsistent_lock_order(self):
        findings = lint(fixture("bad_lock_order.py"), ["NBL009"])
        (finding,) = findings
        assert "both orders" in finding.message or "inconsistent" in finding.message
        assert "self._alpha" in finding.message
        assert "self._beta" in finding.message

    def test_locked_helper_inherits_caller_guards(self, tmp_path):
        path = tmp_path / "helper.py"
        path.write_text(
            textwrap.dedent(
                """
                import threading

                class T:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._n = 0

                    def bump(self):
                        with self._lock:
                            self._apply()

                    def also_bump(self):
                        with self._lock:
                            self._apply()

                    def _apply(self):
                        self._n += 1
                """
            )
        )
        assert lint(str(path), ["NBL009"]) == []


class TestThreadAffinity:
    def test_flags_all_three_escape_shapes(self):
        findings = lint(fixture("bad_thread_affinity.py"), ["NBL010"])
        assert [f.rule_id for f in findings] == ["NBL010"] * 3
        messages = " | ".join(f.message for f in findings)
        assert "closure" in messages
        assert "Thread" in messages
        assert "fan_out" in messages  # the cross-function escape

    def test_good_twin_is_clean(self):
        assert lint(fixture("good_thread_affinity.py"), ["NBL010"]) == []


class TestBlockingUnderLock:
    def test_flags_direct_transitive_and_sleep(self):
        findings = lint(fixture("bad_blocking_under_lock.py"), ["NBL011"])
        functions = sorted(f.function for f in findings)
        assert functions == ["Cache.direct", "Cache.sleepy", "Cache.transitive"]
        transitive = next(
            f for f in findings if f.function == "Cache.transitive"
        )
        # The chain names the helper that actually blocks.
        assert "_refresh" in transitive.message

    def test_lock_free_path_not_flagged(self):
        findings = lint(fixture("bad_blocking_under_lock.py"), ["NBL011"])
        assert all(f.function != "Cache.fine" for f in findings)

    def test_allowlisted_service_flush_is_exempt(self, tmp_path):
        service_dir = tmp_path / "service"
        service_dir.mkdir()
        path = service_dir / "service.py"
        path.write_text(
            textwrap.dedent(
                """
                import threading

                class AnnotationService:
                    def __init__(self, connection):
                        self._write_lock = threading.Lock()
                        self._conn = connection

                    def _flush(self):
                        with self._write_lock:
                            self._conn.execute("BEGIN")
                            self._conn.commit()

                    def not_allowlisted(self):
                        with self._write_lock:
                            self._conn.commit()
                """
            )
        )
        findings = lint(str(path), ["NBL011"])
        assert [f.function for f in findings] == [
            "AnnotationService.not_allowlisted"
        ]


class TestConditionHygiene:
    def test_flags_if_wait_bare_notify_and_naked_wait(self):
        findings = lint(fixture("bad_condition_hygiene.py"), ["NBL012"])
        by_function = {f.function: f for f in findings}
        assert set(by_function) == {
            "Mailbox.take_once",
            "Mailbox.poke",
            "Mailbox.naked_wait",
        }
        assert "while" in by_function["Mailbox.take_once"].message
        assert "notify" in by_function["Mailbox.poke"].message
        assert "holding" in by_function["Mailbox.naked_wait"].message

    def test_correct_shapes_not_flagged(self):
        findings = lint(fixture("bad_condition_hygiene.py"), ["NBL012"])
        assert all(
            f.function not in ("Mailbox.put", "Mailbox.take") for f in findings
        )

    def test_notify_ok_when_every_call_site_holds_lock(self, tmp_path):
        path = tmp_path / "notifier.py"
        path.write_text(
            textwrap.dedent(
                """
                import threading

                class T:
                    def __init__(self):
                        self._condition = threading.Condition()
                        self._items = []

                    def put(self, item):
                        with self._condition:
                            self._items.append(item)
                            self._wake()

                    def _wake(self):
                        self._condition.notify()
                """
            )
        )
        assert lint(str(path), ["NBL012"]) == []


class TestInterproceduralSqlTaint:
    def test_catches_cross_function_flow_both_directions(self):
        findings = lint(fixture("bad_interproc_sql.py"), ["NBL001"])
        assert [f.rule_id for f in findings] == ["NBL001", "NBL001"]
        by_function = {f.function for f in findings}
        assert by_function == {"query_by_name", "caller"}

    def test_good_twin_is_clean(self):
        assert lint(fixture("good_interproc_sql.py"), ["NBL001"]) == []

    def test_old_per_statement_resolver_provably_misses(self):
        """The PR-3 check (no call resolver) reports nothing here.

        This is the regression contract: the fixture's bugs are only
        reachable through the interprocedural layer, so the old
        resolver returning zero findings proves the new coverage is
        strictly larger, not a relabeling.
        """
        parsed = load_module(fixture("bad_interproc_sql.py"))
        ctx = ModuleContext(parsed.path, parsed.tree, parsed.source)
        assert list(check_sql_safety(ctx)) == []

    def test_taint_through_local_variable_hop(self, tmp_path):
        path = tmp_path / "hop.py"
        path.write_text(
            textwrap.dedent(
                """
                def make(table):
                    return "SELECT * FROM " + table

                def go(conn, table):
                    sql = make(table)
                    tail = sql + " LIMIT 1"
                    return conn.execute(tail)
                """
            )
        )
        findings = lint(str(path), ["NBL001"])
        assert [f.function for f in findings] == ["go"]

    def test_inline_ignore_still_suppresses(self, tmp_path):
        path = tmp_path / "suppressed.py"
        path.write_text(
            textwrap.dedent(
                """
                def make(table):
                    return "SELECT * FROM " + table

                def go(conn, table):
                    return conn.execute(make(table))  # nebula-lint: ignore[NBL001]
                """
            )
        )
        assert lint(str(path), ["NBL001"]) == []


class TestFixturesAreNotTestPaths:
    def test_fixture_dir_gets_production_rules(self):
        """`fixtures` under tests/ must not inherit test-file exemptions."""
        from repro.analysis.rules import _is_test_path

        assert not _is_test_path("tests/fixtures/concurrency/bad_lock_order.py")
        assert _is_test_path("tests/test_service.py")
        assert _is_test_path("tests/conftest.py")


class TestJobsParity:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_findings_identical_across_worker_counts(self, jobs):
        serial = analyze_paths([FIXTURES], jobs=1)
        parallel = analyze_paths([FIXTURES], jobs=jobs)
        assert [f.to_dict() for f in parallel] == [
            f.to_dict() for f in serial
        ]
        assert len(serial) > 0
