"""The persisted search index: parity, staleness, top-K, hop profile.

The contract under test: :class:`repro.search.persist.PersistentValueIndex`
is *observationally identical* to the in-memory
:class:`~repro.search.index.InvertedValueIndex` it replaces — same
postings in the same first-seen order, same counts, same search results —
while opening from a valid persisted image in O(#columns) stamp probes,
detecting data loaded behind its back, and rolling back its incremental
writes together with the enclosing data transaction.
"""

import pytest

from repro import Nebula, NebulaConfig, generate_bio_database
from repro.cli import main as cli_main
from repro.core.acg import UNREACHABLE, HopProfile, PersistentHopProfile
from repro.datagen.biodb import BioDatabaseSpec
from repro.meta.lexicon import DEFAULT_LEXICON
from repro.search.engine import KeywordQuery, KeywordSearchEngine
from repro.search.index import InvertedValueIndex
from repro.search.persist import PersistentValueIndex

from conftest import build_figure1_connection, build_figure1_meta

SEARCHABLE = [("Gene", "GID"), ("Gene", "Name"), ("Protein", "PID"),
              ("Protein", "PName"), ("Protein", "PType")]

TINY_SPEC = BioDatabaseSpec(genes=40, proteins=24, publications=60, seed=23)


def _open(connection, columns=SEARCHABLE, **kwargs):
    return PersistentValueIndex.open(connection, columns, **kwargs)


class TestPersistParity:
    """Persisted vs in-memory: identical on both storage engines."""

    def test_rebuild_matches_memory_build(self, figure1_connection):
        index, source = _open(figure1_connection)
        assert source == "rebuilt"
        reference = InvertedValueIndex.build(figure1_connection, SEARCHABLE)
        assert index.parity_mismatches(reference) == []

    def test_loaded_image_matches_memory_build(self, figure1_connection):
        _open(figure1_connection)
        index, source = _open(figure1_connection)
        assert source == "loaded"
        reference = InvertedValueIndex.build(figure1_connection, SEARCHABLE)
        assert index.parity_mismatches(reference) == []
        assert len(index) == len(reference)
        assert index.indexed_columns == reference.indexed_columns

    def test_lookup_interface_equivalence(self, figure1_connection):
        _open(figure1_connection)
        index, _ = _open(figure1_connection)
        reference = InvertedValueIndex.build(figure1_connection, SEARCHABLE)
        for word in ("JW0013", "grpC", "G-Actin", "enzyme", "absent"):
            assert index.lookup(word) == reference.lookup(word)
            assert index.lookup_in(word, "Gene") == reference.lookup_in(word, "Gene")
            assert index.lookup_in(word, "Gene", "Name") == reference.lookup_in(
                word, "Gene", "Name"
            )
            assert index.document_frequency(word) == reference.document_frequency(word)
            assert index.column_counts(word) == reference.column_counts(word)
            assert index.match_count(word, "Gene", "GID") == reference.match_count(
                word, "Gene", "GID"
            )
            assert index.selectivity(word, "Gene", "GID") == reference.selectivity(
                word, "Gene", "GID"
            )

    def test_search_results_identical(self, figure1_connection):
        """Same mappings, candidates, and scores through the engine."""
        persisted, _ = _open(figure1_connection)
        engines = [
            KeywordSearchEngine(
                figure1_connection, searchable_columns=SEARCHABLE,
                aliases={"genes": ("Gene", None)}, lexicon=DEFAULT_LEXICON,
                index=index,
            )
            for index in (None, persisted)
        ]
        for keywords in (
            ("gene", "JW0013"), ("gene", "GRPC"), ("protein", "G-Actin"),
            ("gene", "JW0013", "grpC"), ("gene", "JW9999"),
        ):
            results = [e.search(KeywordQuery(keywords)) for e in engines]
            assert results[0].tuples == results[1].tuples
            mapped = [
                e.mapper.map_query(list(keywords)) for e in engines
            ]
            assert mapped[0] == mapped[1]

    def test_pipeline_parity_on_generated_world(self, storage_backend):
        """Full Stage 1-2 parity on an organic world, both engines."""
        db = generate_bio_database(TINY_SPEC, backend=storage_backend)
        memory = Nebula(
            db.connection, db.meta,
            NebulaConfig(epsilon=0.6, persist_index=False),
            aliases=db.aliases,
        )
        persisted = Nebula(
            db.connection, db.meta, NebulaConfig(epsilon=0.6),
            aliases=db.aliases,
        )
        assert persisted.index_source == "rebuilt"
        gene = db.genes[3]
        for text in (
            f"this gene resembles gene {gene.gid}",
            f"{gene.name} interacts with {db.proteins[0].pname}",
        ):
            reports = [memory.analyze(text), persisted.analyze(text)]
            assert [
                (c.ref, pytest.approx(c.confidence)) for c in reports[0].candidates
            ] == [(c.ref, c.confidence) for c in reports[1].candidates]
            assert len(reports[0].generation.queries) == len(
                reports[1].generation.queries
            )


class TestIncrementalMaintenance:
    def test_add_row_visible_and_persisted(self, figure1_connection):
        index, _ = _open(figure1_connection)
        generation = index.generation
        figure1_connection.execute(
            "INSERT INTO Gene VALUES ('JW0099', 'newG', 1, 'ACGT', 'F9')"
        )
        cursor = figure1_connection.execute(
            "SELECT rowid FROM Gene WHERE GID = 'JW0099'"
        )
        rowid = cursor.fetchone()[0]
        index.add_row("Gene", "GID", rowid, "JW0099")
        index.add_row("Gene", "Name", rowid, "newG")
        figure1_connection.commit()
        assert index.generation > generation
        assert [p.rowid for p in index.lookup("JW0099")] == [rowid]
        # A fresh open adopts the incrementally-maintained image as-is.
        reopened, source = _open(figure1_connection)
        assert source == "loaded"
        reference = InvertedValueIndex.build(figure1_connection, SEARCHABLE)
        assert reopened.parity_mismatches(reference) == []

    def test_rollback_reverts_index_with_data(self, figure1_connection):
        index, _ = _open(figure1_connection)
        figure1_connection.execute(
            "INSERT INTO Gene VALUES ('JW0098', 'rlbG', 1, 'ACGT', 'F9')"
        )
        rowid = figure1_connection.execute(
            "SELECT rowid FROM Gene WHERE GID = 'JW0098'"
        ).fetchone()[0]
        index.add_row("Gene", "GID", rowid, "JW0098")
        figure1_connection.rollback()
        # The persisted posting and stamps rolled back with the data row;
        # the in-memory mirror over-counts, which the stamp check catches
        # in the safe direction (rebuild), never the stale one.
        reopened, _ = _open(figure1_connection)
        assert reopened.lookup("JW0098") == ()
        reference = InvertedValueIndex.build(figure1_connection, SEARCHABLE)
        assert reopened.parity_mismatches(reference) == []


class TestStalenessDetection:
    def test_out_of_band_insert_forces_rebuild(self, figure1_connection):
        _open(figure1_connection)
        # Bulk load behind the index's back (the repro.datagen path).
        figure1_connection.execute(
            "INSERT INTO Gene VALUES ('JW0097', 'oobG', 1, 'ACGT', 'F9')"
        )
        figure1_connection.commit()
        index, source = _open(figure1_connection)
        assert source == "rebuilt"
        assert len(index.lookup("JW0097")) == 1

    def test_out_of_band_delete_forces_rebuild(self, figure1_connection):
        _open(figure1_connection)
        figure1_connection.execute("DELETE FROM Gene WHERE GID = 'JW0027'")
        figure1_connection.commit()
        index, source = _open(figure1_connection)
        assert source == "rebuilt"
        assert index.lookup("JW0027") == ()

    def test_changed_column_set_forces_rebuild(self, figure1_connection):
        _open(figure1_connection)
        index, source = _open(figure1_connection, columns=SEARCHABLE[:3])
        assert source == "rebuilt"
        assert index.indexed_columns == {
            (t.casefold(), c.casefold()) for t, c in SEARCHABLE[:3]
        }

    def test_refresh_reports_and_repairs(self, figure1_connection):
        index, _ = _open(figure1_connection)
        assert index.refresh(SEARCHABLE) is False
        figure1_connection.execute(
            "INSERT INTO Gene VALUES ('JW0096', 'rfsG', 1, 'ACGT', 'F9')"
        )
        figure1_connection.commit()
        assert index.refresh(SEARCHABLE) is True
        assert len(index.lookup("JW0096")) == 1
        assert index.refresh(SEARCHABLE) is False

    def test_nebula_ensure_index_fresh(self, figure1_connection):
        nebula = Nebula(
            figure1_connection, build_figure1_meta(), NebulaConfig()
        )
        assert nebula.ensure_index_fresh() is False
        figure1_connection.execute(
            "INSERT INTO Gene VALUES ('JW0095', 'svcG', 1, 'ACGT', 'F9')"
        )
        figure1_connection.commit()
        assert nebula.ensure_index_fresh() is True
        assert nebula.index_source == "rebuilt"
        report = nebula.analyze("gene JW0095 observed")
        assert any(c.ref.table == "Gene" for c in report.candidates)


class TestTopKEarlyTermination:
    """search(top_k=K) equals the exhaustive result truncated to K."""

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_equals_exhaustive_on_randomized_worlds(self, seed):
        db = generate_bio_database(
            BioDatabaseSpec(genes=36, proteins=20, publications=40, seed=seed)
        )
        nebula = Nebula(
            db.connection, db.meta, NebulaConfig(epsilon=0.6),
            aliases=db.aliases,
        )
        engine = nebula.engine
        gene = db.genes[seed % len(db.genes)]
        protein = db.proteins[seed % len(db.proteins)]
        for keywords in (
            ("gene", gene.gid), ("gene", gene.name),
            ("protein", protein.pname), (gene.gid, gene.name),
        ):
            exhaustive = engine.search(KeywordQuery(keywords))
            for k in (1, 2, 5, len(exhaustive.tuples) + 3):
                limited = engine.search(KeywordQuery(keywords), top_k=k)
                assert limited.tuples == exhaustive.tuples[:k], (keywords, k)
                assert limited.executed_statements <= exhaustive.executed_statements

    def test_early_termination_skips_statements(self):
        connection = build_figure1_connection()
        engine = KeywordSearchEngine(
            connection, searchable_columns=SEARCHABLE,
            aliases={"genes": ("Gene", None)}, lexicon=DEFAULT_LEXICON,
        )
        exhaustive = engine.search(KeywordQuery(("gene", "JW0013", "grpC")))
        limited = engine.search(KeywordQuery(("gene", "JW0013", "grpC")), top_k=1)
        assert limited.tuples == exhaustive.tuples[:1]
        assert limited.executed_statements < exhaustive.executed_statements


class TestPersistentHopProfile:
    def test_counts_survive_reopen(self, figure1_connection):
        profile = PersistentHopProfile(figure1_connection)
        for hops in (1, 1, 2, UNREACHABLE):
            profile.record(hops)
        figure1_connection.commit()
        reopened = PersistentHopProfile(figure1_connection)
        assert reopened.buckets == {1: 2, 2: 1}
        assert reopened.unreachable == 1
        assert reopened.as_rows() == profile.as_rows()

    def test_behaves_like_memory_profile(self, figure1_connection):
        persistent = PersistentHopProfile(figure1_connection)
        memory = HopProfile()
        for hops in (1, 2, 2, 3, UNREACHABLE):
            persistent.record(hops)
            memory.record(hops)
        assert persistent.buckets == memory.buckets
        assert persistent.unreachable == memory.unreachable


class TestIndexCli:
    @pytest.fixture
    def db_path(self, tmp_path):
        path = str(tmp_path / "cli.db")
        assert cli_main([
            "generate", "--db", path, "--genes", "30", "--proteins", "18",
            "--publications", "40",
        ]) == 0
        return path

    def test_status_build_verify_roundtrip(self, db_path, capsys):
        assert cli_main(["index", "status", "--db", db_path]) == 0
        assert "source:" in capsys.readouterr().out
        assert cli_main(["index", "build", "--db", db_path]) == 0
        assert "rebuilt in" in capsys.readouterr().out
        assert cli_main(["index", "verify", "--db", db_path]) == 0
        assert "verified" in capsys.readouterr().out

    def test_verify_detects_corruption(self, db_path, capsys):
        assert cli_main(["index", "build", "--db", db_path]) == 0
        import sqlite3

        with sqlite3.connect(db_path) as connection:
            connection.execute(
                "DELETE FROM _nebula_index_postings WHERE posting_id IN ("
                "SELECT posting_id FROM _nebula_index_postings LIMIT 1)"
            )
            # Keep the stamps valid so the open adopts the (now
            # corrupted) image instead of silently repairing it.
            connection.commit()
        capsys.readouterr()
        assert cli_main(["index", "verify", "--db", db_path]) == 1
        assert "DIVERGES" in capsys.readouterr().out
