"""Unit tests for the context-based weight adjustment (Figure 17)."""

import pytest

from repro.config import NebulaConfig
from repro.core.context_adjust import MatchType, adjust_context_weights
from repro.core.signature_maps import SHAPE_VALUE, build_context_map

from conftest import build_figure1_meta


@pytest.fixture
def meta():
    return build_figure1_meta()


def _weight_of(context, position, shape):
    entry = context.entry_at(position)
    return max(m.weight for m in entry.mappings if m.shape == shape)


class TestMatchTypes:
    def test_type1_strongest_reward(self, meta):
        config = NebulaConfig()
        # {table, column, value}: "gene id JW0018" — id is a GID equivalent.
        context = build_context_map("gene id JW0018", meta, config.epsilon)
        before = _weight_of(context, 2, SHAPE_VALUE)
        reports = adjust_context_weights(context, config)
        after = _weight_of(context, 2, SHAPE_VALUE)
        assert after == pytest.approx(before * (1 + config.beta1))
        value_report = next(
            r for r in reports if r.position == 2 and "value" in r.mapping_description
        )
        assert value_report.match_type is MatchType.TYPE1

    def test_type2_for_table_value_pair(self, meta):
        config = NebulaConfig()
        context = build_context_map("gene yaaB", meta, config.epsilon)
        before = _weight_of(context, 1, SHAPE_VALUE)
        adjust_context_weights(context, config)
        after = _weight_of(context, 1, SHAPE_VALUE)
        assert after == pytest.approx(before * (1 + config.beta2))

    def test_type3_for_column_value_pair(self, meta):
        config = NebulaConfig()
        # "name" maps only to the Gene.Name column (triangle); grpC maps to
        # the Gene.Name domain (hexagon): a pure Type-3 pair.
        context = build_context_map("name grpC", meta, config.epsilon)
        entry = context.entry_at(1)
        assert entry is not None
        before = _weight_of(context, 1, SHAPE_VALUE)
        reports = adjust_context_weights(context, config)
        after = _weight_of(context, 1, SHAPE_VALUE)
        assert after == pytest.approx(before * (1 + config.beta3))
        report = next(
            r for r in reports if r.position == 1 and "value" in r.mapping_description
        )
        assert report.match_type is MatchType.TYPE3

    def test_family_concept_word_forms_type1(self, meta):
        # "family" maps both to the Gene table (via the Gene Family
        # concept) and to the Family column, so "family F1" can assemble a
        # full {table, column, value} Type-1 match around F1.
        config = NebulaConfig()
        context = build_context_map("family F1", meta, config.epsilon)
        reports = adjust_context_weights(context, config)
        report = next(
            r for r in reports if r.position == 1 and "value" in r.mapping_description
        )
        assert report.match_type is MatchType.TYPE1

    def test_no_match_no_change(self, meta):
        config = NebulaConfig()
        context = build_context_map("JW0014", meta, config.epsilon)
        before = _weight_of(context, 0, SHAPE_VALUE)
        adjust_context_weights(context, config)
        assert _weight_of(context, 0, SHAPE_VALUE) == before

    def test_mismatched_table_no_reward(self, meta):
        config = NebulaConfig()
        # "protein JW0014": the value maps to Gene.GID, the concept to the
        # Protein table — inconsistent, so no reward for the value mapping.
        context = build_context_map("protein JW0014", meta, config.epsilon)
        before = _weight_of(context, 1, SHAPE_VALUE)
        adjust_context_weights(context, config)
        assert _weight_of(context, 1, SHAPE_VALUE) == before

    def test_out_of_range_neighbor_ignored(self, meta):
        config = NebulaConfig(alpha=2)
        context = build_context_map(
            "gene was seen near here JW0018", meta, config.epsilon
        )
        before = _weight_of(context, 5, SHAPE_VALUE)
        adjust_context_weights(context, config)
        assert _weight_of(context, 5, SHAPE_VALUE) == before


class TestRewardMechanics:
    def test_weights_may_exceed_one_before_normalization(self, meta):
        # Figure 17 applies uncapped percent rewards; the [0, 1] range is
        # restored by query-weight normalization, not by clamping here.
        config = NebulaConfig(beta1=0.9, beta2=0.5, beta3=0.2)
        context = build_context_map("gene id JW0018", meta, config.epsilon)
        adjust_context_weights(context, config)
        boosted = [
            m.weight
            for entry in context.entries.values()
            for m in entry.mappings
        ]
        assert max(boosted) > 1.0

    def test_multiple_matches_compound(self, meta):
        config = NebulaConfig()
        # Two table words around the value: two Type-2 matches.
        context = build_context_map("gene gene yaaB", meta, config.epsilon)
        reports = adjust_context_weights(context, config)
        report = next(
            r for r in reports if r.position == 2 and "value" in r.mapping_description
        )
        assert report.match_count == 2

    def test_rewards_use_snapshot_not_cascade(self, meta):
        """The same map adjusted twice from fresh builds must agree —
        i.e. iteration order inside one pass cannot change the result."""
        config = NebulaConfig()
        first = build_context_map("gene id JW0018 and yaaB", meta, config.epsilon)
        second = build_context_map("gene id JW0018 and yaaB", meta, config.epsilon)
        adjust_context_weights(first, config)
        adjust_context_weights(second, config)
        for position in first.entries:
            weights_a = sorted(m.weight for m in first.entries[position].mappings)
            weights_b = sorted(m.weight for m in second.entries[position].mappings)
            assert weights_a == weights_b

    def test_concept_words_also_rewarded(self, meta):
        config = NebulaConfig()
        context = build_context_map("gene yaaB", meta, config.epsilon)
        before = max(m.weight for m in context.entry_at(0).mappings)
        adjust_context_weights(context, config)
        after = max(m.weight for m in context.entry_at(0).mappings)
        assert after > before
