"""Tests for the paper's extension features: the ConceptRefs learner
(footnote 2), the multi-hop focal reward (§6.2's rejected extension), and
the spam-annotation guard (footnote 1)."""

import pytest

from repro.annotations.engine import AnnotationManager
from repro.core.acg import AnnotationsConnectivityGraph
from repro.core.focal import (
    apply_focal_adjustment,
    focal_reward_factor,
    path_reward_factor,
)
from repro.core.spam import SpamGuard, count_searchable_tuples
from repro.meta.learning import ConceptLearner, apply_proposals
from repro.meta.repository import NebulaMeta
from repro.types import CellRef, ScoredTuple, TupleRef

from conftest import build_figure1_connection


class TestConceptLearner:
    @pytest.fixture
    def world(self):
        connection = build_figure1_connection()
        manager = AnnotationManager(connection)
        # Annotations referencing genes by GID and by Name.
        manager.add_annotation(
            "about gene JW0013 in depth", attach_to=[CellRef("Gene", 1)]
        )
        manager.add_annotation(
            "the grpC locus matters", attach_to=[CellRef("Gene", 1)]
        )
        manager.add_annotation(
            "results on JW0019 and yaaB", attach_to=[CellRef("Gene", 5)]
        )
        manager.add_annotation(
            "we also touch JW0014", attach_to=[CellRef("Gene", 2)]
        )
        # One protein annotation referencing by PName.
        manager.add_annotation(
            "the G-Actin story", attach_to=[CellRef("Protein", 1)]
        )
        return connection, manager

    def test_learns_gene_referencing_columns(self, world):
        connection, manager = world
        learner = ConceptLearner(manager, min_support=0.4, min_attachments=3)
        proposals = learner.learn()
        gene = next(p for p in proposals if p.table == "Gene")
        columns = {e.column for e in gene.columns}
        assert "GID" in columns
        assert "Name" in columns
        # Unreferenced columns stay out.
        assert "Seq" not in columns
        assert "Length" not in columns

    def test_support_threshold_filters(self, world):
        connection, manager = world
        strict = ConceptLearner(manager, min_support=0.9, min_attachments=3)
        proposals = strict.learn()
        # GID appears in 3/4 gene attachments (0.75 < 0.9): filtered out.
        assert all(p.table != "Gene" for p in proposals)

    def test_min_attachments_gate(self, world):
        connection, manager = world
        learner = ConceptLearner(manager, min_support=0.1, min_attachments=3)
        proposals = learner.learn()
        # Protein has only one attachment: below the gate.
        assert all(p.table != "Protein" for p in proposals)

    def test_apply_proposals_respects_existing_concepts(self, world):
        connection, manager = world
        learner = ConceptLearner(manager, min_support=0.4, min_attachments=3)
        proposals = learner.learn()
        meta = NebulaMeta()
        added = apply_proposals(meta, proposals, connection=connection)
        assert added == 1
        assert meta.get_concept("Gene").table == "Gene"
        # Second application is a no-op.
        assert apply_proposals(meta, proposals) == 0

    def test_bootstrap_after_apply(self, world):
        connection, manager = world
        learner = ConceptLearner(manager, min_support=0.4, min_attachments=3)
        meta = NebulaMeta()
        apply_proposals(meta, learner.learn(), connection=connection)
        assert meta.sample_for("Gene", "GID") is not None


class TestPathFocalReward:
    @pytest.fixture
    def chain(self):
        # 1 - 2 - 3 chain; weights 1.0 each (identical annotation sets).
        acg = AnnotationsConnectivityGraph()
        for ann, (a, b) in enumerate([(1, 2), (2, 3)], start=1):
            acg.add_attachment(ann, TupleRef("Gene", a))
            acg.add_attachment(ann, TupleRef("Gene", b))
        return acg

    def test_direct_neighbor_matches_direct_mode(self, chain):
        focal = [TupleRef("Gene", 1)]
        ref = TupleRef("Gene", 2)
        assert path_reward_factor(ref, chain, focal) == pytest.approx(
            focal_reward_factor(ref, chain, focal)
        )

    def test_multi_hop_tuple_rewarded_only_in_path_mode(self, chain):
        focal = [TupleRef("Gene", 1)]
        ref = TupleRef("Gene", 3)  # two hops from the focal
        assert focal_reward_factor(ref, chain, focal) == 1.0
        assert path_reward_factor(ref, chain, focal) > 1.0

    def test_hop_bound_respected(self, chain):
        focal = [TupleRef("Gene", 1)]
        ref = TupleRef("Gene", 3)
        assert path_reward_factor(ref, chain, focal, max_hops=1) == 1.0
        assert path_reward_factor(ref, chain, focal, max_hops=2) > 1.0

    def test_path_weight_is_product_of_edges(self, chain):
        # Edges 1-2 and 2-3: each tuple pair shares one of each tuple's
        # annotations -> per-edge Jaccard 1/2 for middle, so the product
        # path weight must be below either single edge weight.
        w12 = chain.weight(TupleRef("Gene", 1), TupleRef("Gene", 2))
        path = chain.best_path_weight(TupleRef("Gene", 1), TupleRef("Gene", 3), 3)
        assert 0.0 < path < w12

    def test_apply_with_path_mode(self, chain):
        focal = [TupleRef("Gene", 1)]
        confidences = {TupleRef("Gene", 3): 0.5}
        direct = apply_focal_adjustment(confidences, chain, focal, mode="direct")
        path = apply_focal_adjustment(confidences, chain, focal, mode="path")
        assert direct[TupleRef("Gene", 3)] == 0.5
        assert path[TupleRef("Gene", 3)] > 0.5

    def test_best_path_weight_identity_and_unreachable(self, chain):
        a = TupleRef("Gene", 1)
        assert chain.best_path_weight(a, a, 3) == 1.0
        assert chain.best_path_weight(a, TupleRef("Gene", 99), 3) == 0.0


class TestSpamGuard:
    def _flat(self, count, confidence=0.5):
        return [
            ScoredTuple(TupleRef("Gene", i), confidence, ()) for i in range(count)
        ]

    def test_normal_prediction_passes(self):
        guard = SpamGuard()
        candidates = [
            ScoredTuple(TupleRef("Gene", 1), 1.0, ()),
            ScoredTuple(TupleRef("Gene", 2), 0.4, ()),
        ]
        verdict = guard.screen(candidates, searchable_tuples=1000)
        assert not verdict.is_spam

    def test_fan_out_detected(self):
        guard = SpamGuard(max_candidates=100)
        verdict = guard.screen(self._flat(150), searchable_tuples=100000)
        assert verdict.is_spam
        assert verdict.reason == "fan-out"

    def test_coverage_detected(self):
        guard = SpamGuard(max_coverage=0.3)
        candidates = [
            ScoredTuple(TupleRef("Gene", i), 1.0 - i * 0.02, ()) for i in range(40)
        ]
        verdict = guard.screen(candidates, searchable_tuples=100)
        assert verdict.is_spam
        assert verdict.reason == "coverage"

    def test_flatness_detected(self):
        guard = SpamGuard(flatness_minimum=50, flatness_spread=0.15)
        verdict = guard.screen(self._flat(60, 0.8), searchable_tuples=100000)
        assert verdict.is_spam
        assert verdict.reason == "flatness"

    def test_peaked_distribution_not_flat(self):
        guard = SpamGuard(flatness_minimum=10, flatness_spread=0.15)
        candidates = [ScoredTuple(TupleRef("Gene", 0), 1.0, ())] + self._flat(20, 0.3)
        verdict = guard.screen(candidates, searchable_tuples=100000)
        assert not verdict.is_spam

    def test_empty_candidates(self):
        verdict = SpamGuard().screen([], searchable_tuples=100)
        assert not verdict.is_spam

    def test_count_searchable_tuples(self):
        connection = build_figure1_connection()
        total = count_searchable_tuples(connection, ["Gene", "Protein", "Gene"])
        assert total == 10  # 7 genes + 3 proteins; duplicate table ignored


class TestSpamGuardIntegration:
    def test_spammy_annotation_quarantined(self, bio_db):
        from repro import Nebula, NebulaConfig

        nebula = Nebula(
            bio_db.connection, bio_db.meta, NebulaConfig(epsilon=0.6),
            aliases=bio_db.aliases,
        )
        # Tighten the guard so a moderately broad annotation trips it.
        nebula.spam_guard = SpamGuard(max_candidates=2)
        genes = bio_db.genes
        text = (
            f"We examined genes {genes[0].gid}, and later {genes[1].gid} "
            f"and later {genes[2].gid} and later {genes[3].gid}."
        )
        report = nebula.insert_annotation(text, attach_to=[])
        assert report.spam_verdict is not None
        assert report.spam_verdict.is_spam
        assert report.tasks == []
        # No predicted attachments were created.
        assert nebula.manager.pending_predicted(report.annotation_id) == []
