"""The concurrent annotation service: admission control, deadlines,
coalescing, load shedding, per-request isolation, and shutdown (PR 6)."""

import threading
import time

import pytest

from repro import (
    AnnotationService,
    FaultInjector,
    Nebula,
    NebulaConfig,
    ServiceConfig,
    generate_bio_database,
)
from repro.datagen.biodb import BioDatabaseSpec
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    PipelineStageError,
    ServiceOverloadedError,
    ServiceUnavailableError,
)
from repro.observability import MetricsRegistry, set_metrics
from repro.storage.compat import OperationalError
from repro.resilience import SERVICE_SHED


@pytest.fixture()
def db(storage_backend):
    return generate_bio_database(
        BioDatabaseSpec(genes=30, proteins=18, publications=100, seed=11),
        backend=storage_backend,
    )


@pytest.fixture()
def faults():
    return FaultInjector()


@pytest.fixture()
def metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


@pytest.fixture()
def nebula(db, storage_backend, faults, metrics):
    config = NebulaConfig(epsilon=0.6, fault_injector=faults)
    engine = Nebula(storage_backend, db.meta, config, aliases=db.aliases)
    yield engine
    engine.close()


def make_service(nebula, **overrides):
    defaults = dict(queue_capacity=16, max_batch=8, flush_interval=0.02)
    defaults.update(overrides)
    return AnnotationService(nebula, ServiceConfig(**defaults))


def texts(db, n, tag="note"):
    genes = db.genes
    return [
        f"{tag} {i}: gene {genes[i % len(genes)].gid} looks interesting"
        for i in range(n)
    ]


class TestConfig:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"queue_capacity": 0},
            {"max_batch": 0},
            {"flush_interval": 0.0},
            {"default_deadline": -1.0},
            {"shutdown_timeout": 0.0},
            {"shed_watermark": 0.0},
            {"shed_watermark": 1.5},
            {"shed_recovery": 0.9, "shed_watermark": 0.5},
        ],
    )
    def test_invalid_config_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            ServiceConfig(**overrides)


class TestAdmissionControl:
    def test_full_queue_rejects_with_overload(self, db, nebula):
        # Not started: nothing drains, so the queue fills deterministically.
        service = make_service(nebula, queue_capacity=4)
        for text in texts(db, 4):
            service.submit(text)
        with pytest.raises(ServiceOverloadedError) as excinfo:
            service.submit("one too many")
        assert excinfo.value.capacity == 4
        assert service.stats().rejected == 1
        # The queued work still flushes once the writer starts.
        service.start()
        assert service.stop() is True
        assert service.stats().ingested == 4

    def test_submit_after_stop_is_unavailable(self, db, nebula):
        service = make_service(nebula).start()
        service.stop()
        with pytest.raises(ServiceUnavailableError):
            service.submit("too late")

    def test_rejected_submission_is_not_lost_work(self, db, nebula):
        service = make_service(nebula, queue_capacity=2)
        tickets = [service.submit(text) for text in texts(db, 2)]
        with pytest.raises(ServiceOverloadedError):
            service.submit("rejected")
        service.start()
        reports = [ticket.result(timeout=10.0) for ticket in tickets]
        assert all(report.annotation_id for report in reports)
        service.stop()
        stats = service.stats()
        assert stats.submitted == 2 and stats.rejected == 1


class TestDeadlines:
    def test_expired_submission_fails_with_deadline_error(self, db, nebula):
        service = make_service(nebula)
        ticket = service.submit(texts(db, 1)[0], deadline=0.01)
        time.sleep(0.05)  # expire while the writer is not yet running
        service.start()
        with pytest.raises(DeadlineExceededError):
            ticket.result(timeout=10.0)
        service.stop()
        stats = service.stats()
        assert stats.expired == 1 and stats.ingested == 0

    def test_default_deadline_applies(self, db, nebula):
        service = make_service(nebula, default_deadline=0.01)
        ticket = service.submit(texts(db, 1)[0])
        assert ticket.deadline == 0.01

    def test_invalid_deadline_rejected(self, db, nebula):
        service = make_service(nebula)
        with pytest.raises(Exception):
            service.submit("x", deadline=-2.0)

    def test_result_timeout_leaves_ticket_in_flight(self, db, nebula):
        service = make_service(nebula)  # never started
        ticket = service.submit(texts(db, 1)[0])
        with pytest.raises(TimeoutError):
            ticket.result(timeout=0.01)
        assert not ticket.done
        service.start()
        ticket.result(timeout=10.0)
        service.stop()


class TestCoalescing:
    def test_queued_submissions_flush_as_one_batch(self, db, nebula):
        service = make_service(nebula, max_batch=16)
        tickets = [service.submit(text) for text in texts(db, 6)]
        service.start()
        for ticket in tickets:
            ticket.result(timeout=10.0)
        service.stop()
        stats = service.stats()
        assert stats.ingested == 6
        assert stats.batches == 1  # all six coalesced into one flush

    def test_concurrent_clients_all_complete(self, db, nebula):
        service = make_service(nebula, queue_capacity=64).start()
        outcomes = []
        lock = threading.Lock()

        def client(i):
            report = service.ingest(
                f"client note {i}: gene {db.genes[i % len(db.genes)].gid}",
                timeout=30.0,
            )
            with lock:
                outcomes.append(report.annotation_id)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(10)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert service.stop() is True
        assert len(outcomes) == 10
        assert len(set(outcomes)) == 10  # ten distinct annotations


class TestLoadShedding:
    def test_deep_queue_triggers_approximate_search(self, db, nebula):
        service = make_service(
            nebula,
            queue_capacity=8,
            max_batch=2,
            shed_watermark=0.5,
            shed_recovery=0.25,
        )
        tickets = [service.submit(text) for text in texts(db, 8)]
        service.start()
        reports = [ticket.result(timeout=30.0) for ticket in tickets]
        service.stop()
        shed = [r for r in reports if SERVICE_SHED in r.degradations]
        assert shed, "a deep queue must shed into approximate search"
        # Shedding disengages once the queue drains below the recovery mark.
        assert service.stats().shedding is False

    def test_light_load_does_not_shed(self, db, nebula):
        service = make_service(nebula).start()
        report = service.ingest(texts(db, 1)[0], timeout=10.0)
        service.stop()
        assert SERVICE_SHED not in report.degradations


class TestPoisonedBatch:
    def test_one_bad_member_does_not_fail_neighbors(self, db, nebula, faults):
        service = make_service(nebula, max_batch=8)
        tickets = [service.submit(text) for text in texts(db, 3)]
        # First firing poisons the whole batch; it is retried per-request
        # where the fault is exhausted, so every member lands.
        faults.arm("queue.triage", times=1)
        service.start()
        reports = [ticket.result(timeout=10.0) for ticket in tickets]
        service.stop()
        assert len(reports) == 3
        assert service.dead_letter_count() == 0

    def test_persistent_failure_dead_letters_only_its_request(
        self, db, nebula, faults
    ):
        service = make_service(nebula, max_batch=8)
        tickets = [service.submit(text) for text in texts(db, 3)]
        # Firing 1 poisons the batch; firing 2 hits the first member on
        # the per-request fallback path and dead-letters it alone.
        faults.arm("queue.triage", times=2)
        service.start()
        outcomes = []
        for ticket in tickets:
            try:
                outcomes.append(ticket.result(timeout=10.0))
            except PipelineStageError as error:
                outcomes.append(error)
        service.stop()
        failures = [o for o in outcomes if isinstance(o, PipelineStageError)]
        assert len(failures) == 1
        assert failures[0].dead_letter_id is not None
        assert service.dead_letter_count() == 1
        stats = service.stats()
        assert stats.ingested == 2 and stats.failed == 1


class TestShutdown:
    def test_clean_stop_flushes_queued_work(self, db, nebula):
        service = make_service(nebula)
        tickets = [service.submit(text) for text in texts(db, 5)]
        service.start()
        assert service.stop() is True
        for ticket in tickets:
            assert ticket.result(timeout=0).annotation_id

    def test_timed_out_stop_fails_stranded_submissions(self, db, nebula, faults):
        service = make_service(nebula, max_batch=1, flush_interval=0.01)
        # Every flush stalls long enough that a tiny shutdown budget
        # cannot drain four of them.
        faults.arm_stall("service.flush", 0.3, times=-1)
        tickets = [service.submit(text) for text in texts(db, 4)]
        service.start()
        assert service.stop(timeout=0.05) is False
        stranded = 0
        for ticket in tickets:
            try:
                ticket.result(timeout=10.0)
            except ServiceUnavailableError:
                stranded += 1
        assert stranded >= 1
        # Let the writer finish its in-flight item before the backend
        # fixture tears down.
        writer = service._writer
        if writer is not None:
            writer.join(10.0)

    def test_double_start_rejected(self, db, nebula):
        service = make_service(nebula).start()
        with pytest.raises(Exception):
            service.start()
        service.stop()


class TestHealth:
    def test_health_transitions(self, db, nebula):
        service = make_service(nebula)
        assert service.health()["status"] == "starting"
        assert not service.ready()
        service.start()
        assert service.ready()
        assert service.health()["status"] == "ok"
        service.stop()
        assert service.health()["status"] == "stopped"
        assert not service.ready()

    def test_stats_account_for_every_submission(self, db, nebula):
        service = make_service(nebula, queue_capacity=4)
        for text in texts(db, 4):
            service.submit(text)
        with pytest.raises(ServiceOverloadedError):
            service.submit("overflow")
        service.start()
        service.stop()
        stats = service.stats()
        assert stats.submitted == 4
        assert stats.rejected == 1
        assert stats.submitted == stats.ingested + stats.failed + stats.expired


class TestReadEndpoints:
    def test_reads_see_committed_annotations(self, db, nebula):
        service = make_service(nebula).start()
        before = service.annotation_count()
        report = service.ingest(
            f"flagged observation: gene {db.genes[0].gid} drifted", timeout=10.0
        )
        assert service.annotation_count() == before + 1
        found = service.find_annotations("flagged observation")
        assert any(row[0] == report.annotation_id for row in found)
        service.stop()

    def test_reader_fault_falls_back_without_failing(
        self, db, nebula, faults, metrics
    ):
        service = make_service(nebula).start()
        service.ingest(texts(db, 1)[0], timeout=10.0)
        count = service.annotation_count()
        faults.arm("service.reader", times=1)
        assert service.annotation_count() == count  # degraded, not broken
        assert (
            metrics.counter("nebula_service_reader_fallbacks_total").value >= 1
        )
        service.stop()

    def test_transient_lock_during_read_retries_on_primary(
        self, db, nebula, metrics
    ):
        # Shared-cache readers (memory engine: no WAL) fail with
        # "database table is locked" when a read overlaps the writer's
        # open transaction; the read must retry on the primary.
        service = make_service(nebula).start()
        service.ingest(texts(db, 1)[0], timeout=10.0)
        seen = []

        def flaky(connection):
            seen.append(connection)
            if len(seen) == 1:
                raise OperationalError(
                    "database table is locked: _nebula_annotations"
                )
            row = connection.execute(
                "SELECT COUNT(*) FROM _nebula_annotations"
            ).fetchone()
            return int(row[0])

        assert service._read(flaky) >= 1
        assert seen[-1] is nebula.connection
        assert (
            metrics.counter("nebula_service_reader_fallbacks_total").value >= 1
        )
        service.stop()

    def test_non_transient_read_errors_propagate(self, db, nebula):
        service = make_service(nebula).start()
        with pytest.raises(OperationalError, match="no such table"):
            service._read(
                lambda connection: connection.execute(
                    "SELECT * FROM _nebula_no_such_table"
                ).fetchall()
            )
        service.stop()

    def test_read_survives_open_write_transaction_on_primary(
        self, db, nebula
    ):
        # The writer-side shape of the race: an open transaction holds
        # the annotation table's write lock while a reader counts it.
        # WAL readers see the committed snapshot; shared-cache readers
        # fall back to the primary.  Either way the read completes.
        service = make_service(nebula)  # deliberately not started: the
        # primary connection is free for the test to hold a transaction
        nebula.insert_annotation(
            texts(db, 1, tag="pre")[0], author="setup"
        )
        connection = nebula.connection
        connection.execute("BEGIN")
        connection.execute("UPDATE _nebula_annotations SET author = author")
        try:
            assert service.annotation_count() >= 1
        finally:
            connection.rollback()

    def test_pending_verifications_listing(self, db, nebula):
        service = make_service(nebula).start()
        service.ingest(
            f"gene {db.genes[2].gid} interacts with gene {db.genes[3].gid}",
            timeout=10.0,
        )
        rows = service.pending_verifications(limit=5)
        for task_id, annotation_id, table, rowid, confidence in rows:
            assert 0.0 <= confidence <= 1.0
            assert rowid >= 1
        service.stop()
