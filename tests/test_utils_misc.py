"""Unit tests for timers, RNG helpers, and the configuration object."""

import pytest

from repro.config import NEBULA_06, NEBULA_08, NebulaConfig
from repro.errors import ConfigurationError
from repro.utils.rng import make_rng
from repro.utils.timer import PhaseTimer, Stopwatch


class TestStopwatch:
    def test_accumulates(self):
        watch = Stopwatch()
        watch.start()
        watch.stop()
        first = watch.elapsed
        watch.start()
        watch.stop()
        assert watch.elapsed >= first

    def test_double_start_is_idempotent(self):
        watch = Stopwatch()
        watch.start()
        watch.start()
        assert watch.stop() >= 0.0

    def test_stop_without_start(self):
        assert Stopwatch().stop() == 0.0

    def test_reset(self):
        watch = Stopwatch()
        watch.start()
        watch.stop()
        watch.reset()
        assert watch.elapsed == 0.0


class TestPhaseTimer:
    def test_phases_accumulate_independently(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
        with timer.phase("a"):
            pass
        totals = timer.totals()
        assert set(totals) == {"a", "b"}
        assert timer.total() == pytest.approx(sum(totals.values()))

    def test_phase_survives_exception(self):
        timer = PhaseTimer()
        with pytest.raises(ValueError):
            with timer.phase("x"):
                raise ValueError("boom")
        assert "x" in timer.totals()


class TestMakeRng:
    def test_same_seed_same_stream(self):
        assert make_rng(1, "s").random() == make_rng(1, "s").random()

    def test_salt_decorrelates(self):
        assert make_rng(1, "a").random() != make_rng(1, "b").random()

    def test_none_seed_gives_fresh_rng(self):
        rng = make_rng(None)
        assert 0.0 <= rng.random() < 1.0


class TestNebulaConfig:
    def test_defaults_are_valid(self):
        config = NebulaConfig()
        assert config.epsilon == 0.6
        assert config.beta1 > config.beta2 > config.beta3

    def test_named_variants(self):
        assert NEBULA_06.epsilon == 0.6
        assert NEBULA_08.epsilon == 0.8

    def test_with_updates_returns_new_object(self):
        base = NebulaConfig()
        updated = base.with_updates(epsilon=0.8)
        assert updated.epsilon == 0.8
        assert base.epsilon == 0.6

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epsilon": 0.0},
            {"epsilon": 1.5},
            {"alpha": 0},
            {"beta1": 0.1, "beta2": 0.2, "beta3": 0.05},
            {"beta_lower": 0.9, "beta_upper": 0.5},
            {"beta_upper": 1.5},
            {"batch_size": 0},
            {"stability_mu": 0.0},
            {"stability_mu": 1.0},
            {"spreading_hops": 0},
            {"target_recall": 0.0},
            {"max_query_keywords": 1},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            NebulaConfig(**kwargs)

    def test_frozen(self):
        with pytest.raises(Exception):
            NebulaConfig().epsilon = 0.9  # type: ignore[misc]
