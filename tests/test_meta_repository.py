"""Unit tests for NebulaMeta: ConceptRefs, p(w, c), and d(w, c)."""

import pytest

from repro.errors import MetadataError, UnknownConceptError
from repro.meta.concepts import ConceptRef, ReferencingColumn
from repro.meta.repository import (
    EQUIVALENT_NAME_SCORE,
    EXACT_NAME_SCORE,
    SYNONYM_NAME_SCORE,
    NebulaMeta,
)

from conftest import build_figure1_connection, build_figure1_meta


class TestConceptRef:
    def test_build_single_and_combined_alternatives(self):
        ref = ConceptRef.build("Protein", "Protein", [["PID"], ["PName", "PType"]])
        assert len(ref.referenced_by) == 2
        assert ref.referenced_by[1] == (
            ReferencingColumn("Protein", "PName"),
            ReferencingColumn("Protein", "PType"),
        )

    def test_qualified_column_names(self):
        ref = ConceptRef.build("X", "A", [["B.col"]])
        assert ref.referenced_by[0][0].table == "B"

    def test_matches_name_with_equivalents(self):
        ref = ConceptRef.build("Gene", "Gene", [["GID"]], equivalent_names=["locus"])
        assert ref.matches_name("gene")
        assert ref.matches_name("LOCUS")
        assert not ref.matches_name("protein")

    def test_referencing_columns_flattened(self):
        ref = ConceptRef.build("Protein", "Protein", [["PID"], ["PName", "PType"]])
        columns = {c.column for c in ref.referencing_columns}
        assert columns == {"PID", "PName", "PType"}


class TestConceptMappings:
    @pytest.fixture
    def meta(self):
        return build_figure1_meta()

    def test_exact_table_name(self, meta):
        mappings = meta.concept_mappings("gene")
        table_hits = [m for m in mappings if m.kind == "table" and m.table == "Gene"]
        assert table_hits and table_hits[0].score == EXACT_NAME_SCORE

    def test_equivalent_name(self, meta):
        mappings = meta.concept_mappings("genes")
        assert any(
            m.kind == "table" and m.score == EQUIVALENT_NAME_SCORE for m in mappings
        )

    def test_column_equivalent(self, meta):
        mappings = meta.concept_mappings("id")
        assert any(
            m.kind == "column" and m.column == "GID" and m.score == EQUIVALENT_NAME_SCORE
            for m in mappings
        )

    def test_synonym_via_lexicon(self, meta):
        # "cistron" is in the gene synset of the default lexicon.
        mappings = meta.concept_mappings("cistron")
        assert any(m.score == SYNONYM_NAME_SCORE for m in mappings)

    def test_exact_column_name(self, meta):
        mappings = meta.concept_mappings("family")
        assert any(m.kind == "column" and m.column == "Family" for m in mappings)

    def test_stopwords_never_map(self, meta):
        assert meta.concept_mappings("the") == []

    def test_unrelated_word(self, meta):
        assert meta.concept_mappings("spectacular") == []

    def test_mappings_sorted_best_first(self, meta):
        mappings = meta.concept_mappings("gene")
        scores = [m.score for m in mappings]
        assert scores == sorted(scores, reverse=True)


class TestValueMappings:
    @pytest.fixture
    def meta(self):
        return build_figure1_meta()

    def test_pattern_match_scores_high(self, meta):
        mappings = meta.value_mappings("JW0014")
        gid = [m for m in mappings if m.column == "GID"]
        assert gid and gid[0].score >= 0.8
        assert any("pattern" in e for e in gid[0].evidence)

    def test_gene_name_pattern_case_sensitive(self, meta):
        strong = meta.value_mappings("nhaA")
        weak = meta.value_mappings("nhaa")
        strong_name = max(m.score for m in strong if m.column == "Name")
        weak_name = max((m.score for m in weak if m.column == "Name"), default=0.0)
        assert strong_name > weak_name

    def test_ontology_member(self, meta):
        mappings = meta.value_mappings("enzyme")
        ptype = [m for m in mappings if m.column == "PType"]
        assert ptype and ptype[0].score >= 0.8

    def test_sample_exact_membership(self, meta):
        mappings = meta.value_mappings("G-Actin")
        pname = [m for m in mappings if m.column == "PName"]
        assert pname and pname[0].score >= 0.8

    def test_type_only_evidence_insufficient(self, meta):
        # A word with no ontology/pattern/sample signal yields no mapping
        # for pattern-guarded columns.
        mappings = meta.value_mappings("zzzzzzzzzzzzzzzz")
        assert all(m.score < 0.6 for m in mappings)

    def test_stopword_rejected(self, meta):
        assert meta.value_mappings("the") == []

    def test_sorted_best_first(self, meta):
        mappings = meta.value_mappings("JW0013")
        scores = [m.score for m in mappings]
        assert scores == sorted(scores, reverse=True)


class TestBootstrap:
    def test_bootstrap_draws_samples_and_patterns(self):
        connection = build_figure1_connection()
        meta = NebulaMeta()
        meta.add_concept(ConceptRef.build("Gene", "Gene", [["GID"], ["Name"]]))
        meta.bootstrap_from_connection(connection, sample_size=10)
        assert meta.sample_for("Gene", "GID") is not None
        assert meta.pattern_for("Gene", "GID") is not None
        # 7 hand-picked names are enough support and share the template.
        assert meta.pattern_for("Gene", "Name") is not None

    def test_bootstrap_rejects_unknown_column(self):
        connection = build_figure1_connection()
        meta = NebulaMeta()
        meta.add_concept(ConceptRef.build("Gene", "Gene", [["NoSuchColumn"]]))
        with pytest.raises(MetadataError):
            meta.bootstrap_from_connection(connection)

    def test_get_concept_unknown(self):
        with pytest.raises(UnknownConceptError):
            NebulaMeta().get_concept("nothing")

    def test_get_concept_case_insensitive(self):
        meta = build_figure1_meta()
        assert meta.get_concept("GENE").concept == "Gene"
