"""Tests for compact range attachments (the substrate's compression)."""

import pytest

from repro.annotations.engine import AnnotationManager
from repro.annotations.propagation import propagate
from repro.annotations.store import AttachmentKind
from repro.core.acg import AnnotationsConnectivityGraph
from repro.errors import StorageError
from repro.types import CellRef, TupleRef

from conftest import build_figure1_connection


@pytest.fixture
def manager():
    return AnnotationManager(build_figure1_connection())


class TestAttachRange:
    def test_single_stored_edge_covers_range(self, manager):
        note = manager.add_annotation("rows 2-5")
        attachment = manager.attach_range(note.annotation_id, "Gene", 2, 5)
        assert attachment.is_range
        assert manager.store.count_attachments() == 1
        for rowid in (2, 3, 4, 5):
            assert attachment.covers(rowid)
        assert not attachment.covers(1)
        assert not attachment.covers(6)

    def test_range_has_no_single_tuple_ref(self, manager):
        note = manager.add_annotation("rows 2-5")
        attachment = manager.attach_range(note.annotation_id, "Gene", 2, 5)
        assert attachment.tuple_ref is None

    def test_degenerate_range_collapses_to_plain(self, manager):
        note = manager.add_annotation("row 3 only")
        attachment = manager.attach_range(note.annotation_id, "Gene", 3, 3)
        assert not attachment.is_range
        assert attachment.tuple_ref == TupleRef("Gene", 3)

    def test_inverted_range_rejected(self, manager):
        note = manager.add_annotation("bad")
        with pytest.raises(StorageError):
            manager.attach_range(note.annotation_id, "Gene", 5, 2)

    def test_idempotent(self, manager):
        note = manager.add_annotation("rows 2-5")
        first = manager.attach_range(note.annotation_id, "Gene", 2, 5)
        second = manager.attach_range(note.annotation_id, "Gene", 2, 5)
        assert first.attachment_id == second.attachment_id
        assert manager.store.count_attachments() == 1

    def test_range_is_true_kind(self, manager):
        note = manager.add_annotation("rows 2-5")
        attachment = manager.attach_range(note.annotation_id, "Gene", 2, 5)
        assert attachment.kind is AttachmentKind.TRUE
        assert attachment.confidence == 1.0

    def test_column_scoped_range(self, manager):
        note = manager.add_annotation("names 1-3")
        attachment = manager.attach_range(
            note.annotation_id, "Gene", 1, 3, column="Name"
        )
        assert attachment.column == "Name"


class TestRangeVisibility:
    def test_attachments_on_sees_covered_rows(self, manager):
        note = manager.add_annotation("rows 2-5")
        manager.attach_range(note.annotation_id, "Gene", 2, 5)
        assert len(manager.store.attachments_on("Gene", rowid=3)) == 1
        assert manager.store.attachments_on("Gene", rowid=6) == []

    def test_annotations_of_tuple(self, manager):
        note = manager.add_annotation("rows 2-5")
        manager.attach_range(note.annotation_id, "Gene", 2, 5)
        found = manager.annotations_of_tuple(TupleRef("Gene", 4))
        assert [a.annotation_id for a in found] == [note.annotation_id]
        assert manager.annotations_of_tuple(TupleRef("Gene", 1)) == []

    def test_propagation_applies_range(self, manager):
        note = manager.add_annotation("rows 1-3 note")
        manager.attach_range(note.annotation_id, "Gene", 1, 3)
        rows = propagate(manager.connection, "Gene")
        covered = {
            row.ref.rowid
            for row in rows
            if any(text == "rows 1-3 note" for text, _ in row.annotations)
        }
        assert covered == {1, 2, 3}

    def test_true_attachment_pairs_expand_against_live_rows(self, manager):
        note = manager.add_annotation("rows 1-4")
        manager.attach_range(note.annotation_id, "Gene", 1, 4)
        pairs = manager.store.true_attachment_pairs()
        assert [(a, r.rowid) for a, r in pairs] == [
            (note.annotation_id, 1),
            (note.annotation_id, 2),
            (note.annotation_id, 3),
            (note.annotation_id, 4),
        ]
        # Deleting a row shrinks the expansion (no dangling tuples).
        manager.connection.execute("DELETE FROM Gene WHERE rowid = 2")
        pairs = manager.store.true_attachment_pairs()
        assert [r.rowid for _, r in pairs] == [1, 3, 4]

    def test_acg_builds_from_expanded_ranges(self, manager):
        note = manager.add_annotation("rows 1-3")
        manager.attach_range(note.annotation_id, "Gene", 1, 3)
        acg = AnnotationsConnectivityGraph.build_from_manager(manager)
        assert acg.node_count == 3
        assert acg.edge_count == 3  # a clique of the three covered rows

    def test_focal_of_includes_range_rows_via_pairs(self, manager):
        # focal_of walks attachments_of: a range appears as one attachment
        # with no single tuple_ref, so it contributes no focal tuples —
        # ranges are curator bulk annotations, not Nebula focals.
        note = manager.add_annotation("rows 1-3")
        manager.attach_range(note.annotation_id, "Gene", 1, 3)
        assert manager.focal_of(note.annotation_id) == ()

    def test_plain_and_range_coexist(self, manager):
        note = manager.add_annotation("mixed")
        manager.attach_true(note.annotation_id, CellRef("Gene", 7))
        manager.attach_range(note.annotation_id, "Gene", 1, 2)
        on_seven = manager.store.attachments_on("Gene", rowid=7)
        assert len(on_seven) == 1 and not on_seven[0].is_range
        on_one = manager.store.attachments_on("Gene", rowid=1)
        assert len(on_one) == 1 and on_one[0].is_range
