"""Unit + property tests for value patterns and pattern inference."""

import string

import pytest
from hypothesis import given, strategies as st

from repro.meta.patterns import ValuePattern, infer_pattern


class TestValuePattern:
    def test_full_match_required(self):
        pattern = ValuePattern(r"JW[0-9]{4}")
        assert pattern.matches("JW0014")
        assert not pattern.matches("JW0014X")
        assert not pattern.matches("XJW0014")

    def test_case_sensitivity_default(self):
        pattern = ValuePattern(r"[a-z]{3}[A-Z]")
        assert pattern.matches("grpC")
        assert not pattern.matches("GRPC")
        assert not pattern.matches("grpc")

    def test_case_insensitive_variant(self):
        pattern = ValuePattern(r"[a-z]{3}[A-Z]", case_sensitive=False)
        assert pattern.matches("GRPC")

    def test_empty_string_never_matches(self):
        assert not ValuePattern(r"[a-z]+").matches("")


class TestInferPattern:
    def test_paper_gene_ids(self):
        pattern = infer_pattern(["JW0013", "JW0014", "JW0027"])
        assert pattern is not None
        assert pattern.matches("JW0099")
        assert not pattern.matches("JW999")

    def test_paper_gene_names(self):
        pattern = infer_pattern(["grpC", "yaaB", "insL", "nhaA"])
        assert pattern is not None
        assert pattern.source == "[a-z]{3}[A-Z]"
        assert pattern.matches("abcZ")
        assert not pattern.matches("abcz")

    def test_literal_characters_survive(self):
        pattern = infer_pattern(["F-1", "G-2", "H-3"])
        assert pattern is not None
        assert pattern.matches("Z-9")
        assert not pattern.matches("Z9")

    def test_heterogeneous_sample_fails(self):
        assert infer_pattern(["G-Actin", "Ligase42", "pepsin3"]) is None

    def test_mixed_lengths_fail(self):
        assert infer_pattern(["ab", "abc", "abcd"]) is None

    def test_insufficient_support(self):
        assert infer_pattern(["JW0013", "JW0014"], min_support=3) is None

    def test_empty_values_ignored(self):
        assert infer_pattern(["", "", ""]) is None

    def test_duplicates_do_not_inflate_support(self):
        assert infer_pattern(["JW0013"] * 10, min_support=3) is None


@given(
    st.lists(
        st.from_regex(r"[A-Z]{2}[0-9]{3}", fullmatch=True),
        min_size=3,
        max_size=25,
    )
)
def test_inferred_pattern_accepts_every_training_value(values):
    """Property: whatever pattern inference produces must accept all of its
    own (homogeneous) training values."""
    pattern = infer_pattern(values)
    if pattern is None:
        # Can legitimately happen when < 3 *distinct* values were supplied.
        assert len(set(values)) < 3
    else:
        for value in values:
            assert pattern.matches(value)


@given(
    st.lists(st.text(alphabet=string.ascii_letters + string.digits, min_size=1, max_size=12),
             min_size=0, max_size=20)
)
def test_infer_pattern_never_crashes(values):
    """Property: inference is total over alphanumeric samples."""
    pattern = infer_pattern(values)
    if pattern is not None:
        for value in set(values):
            assert pattern.matches(value)
