"""Unit tests for configurations, SQL generation, and the search engine."""

import pytest

from repro.errors import EmptyQueryError
from repro.meta.lexicon import DEFAULT_LEXICON
from repro.search.configurations import enumerate_configurations
from repro.search.engine import KeywordQuery, KeywordSearchEngine, SearchScope
from repro.search.sqlgen import generate_sql
from repro.types import TupleRef

from conftest import build_figure1_connection

SEARCHABLE = [("Gene", "GID"), ("Gene", "Name"), ("Protein", "PID"),
              ("Protein", "PName"), ("Protein", "PType")]


@pytest.fixture
def engine():
    return KeywordSearchEngine(
        build_figure1_connection(),
        searchable_columns=SEARCHABLE,
        aliases={"genes": ("Gene", None)},
        lexicon=DEFAULT_LEXICON,
    )


class TestConfigurations:
    def test_requires_a_value_mapping(self, engine):
        mappings = engine.mapper.map_query(["gene"])  # schema-only word
        assert enumerate_configurations(mappings, engine.schema) == []

    def test_configurations_sorted_best_first(self, engine):
        mappings = engine.mapper.map_query(["gene", "JW0013"])
        configs = enumerate_configurations(mappings, engine.schema)
        scores = [c.score for c in configs]
        assert scores == sorted(scores, reverse=True)

    def test_coherent_config_wins(self, engine):
        mappings = engine.mapper.map_query(["gene", "JW0013"])
        best = enumerate_configurations(mappings, engine.schema)[0]
        assert best.value_mappings
        assert best.value_mappings[0].table == "Gene"
        assert any(m.kind.value == "table" for m in best.schema_mappings)

    def test_dedupe_by_value_signature(self, engine):
        mappings = engine.mapper.map_query(["gene", "JW0013"])
        configs = enumerate_configurations(mappings, engine.schema)
        signatures = [
            frozenset((m.keyword, m.table, m.column) for m in c.value_mappings)
            for c in configs
        ]
        assert len(signatures) == len(set(signatures))

    def test_max_configurations_cap(self, engine):
        mappings = engine.mapper.map_query(["gene", "JW0013", "grpC"])
        configs = enumerate_configurations(mappings, engine.schema, max_configurations=2)
        assert len(configs) <= 2


class TestSqlGeneration:
    def test_single_table_query(self, engine):
        mappings = engine.mapper.map_query(["JW0013"])
        config = enumerate_configurations(mappings, engine.schema)[0]
        (sql,) = generate_sql(config, engine.schema)
        assert sql.target_table == "Gene"
        assert "COLLATE NOCASE" in sql.sql
        assert sql.params == ("JW0013",)

    def test_cross_table_join(self, engine):
        # grpC is a gene name, G-Actin a protein name: the Protein-target
        # query must join through the FK to constrain on Gene.
        mappings = engine.mapper.map_query(["grpC", "G-Actin"])
        configs = enumerate_configurations(mappings, engine.schema)
        config = next(
            c for c in configs
            if {v.table for v in c.value_mappings} == {"Gene", "Protein"}
        )
        queries = generate_sql(config, engine.schema)
        assert {q.target_table for q in queries} == {"Gene", "Protein"}
        assert all("JOIN" in q.sql for q in queries)

    def test_scope_filter_injected(self, engine):
        mappings = engine.mapper.map_query(["JW0013"])
        config = enumerate_configurations(mappings, engine.schema)[0]
        (sql,) = generate_sql(config, engine.schema, {"gene": "rowid IN (1, 2)"})
        assert "rowid IN (1, 2)" in sql.sql

    def test_single_local_condition_flag(self, engine):
        mappings = engine.mapper.map_query(["JW0013"])
        config = enumerate_configurations(mappings, engine.schema)[0]
        (sql,) = generate_sql(config, engine.schema)
        assert sql.is_single_local_condition


class TestEngineSearch:
    def test_finds_gene_by_gid(self, engine):
        result = engine.search(KeywordQuery(("gene", "JW0013")))
        assert TupleRef("Gene", 1) in result.refs

    def test_finds_gene_by_name_case_insensitive(self, engine):
        result = engine.search(KeywordQuery(("gene", "GRPC")))
        assert TupleRef("Gene", 1) in result.refs

    def test_finds_protein_join_tuple(self, engine):
        result = engine.search(KeywordQuery(("protein", "G-Actin")))
        assert TupleRef("Protein", 1) in result.refs

    def test_confidences_bounded(self, engine):
        result = engine.search(KeywordQuery(("gene", "JW0013")))
        assert all(0.0 < t.confidence <= 1.0 for t in result.tuples)

    def test_results_sorted(self, engine):
        result = engine.search(KeywordQuery(("gene", "JW0013", "grpC")))
        confidences = [t.confidence for t in result.tuples]
        assert confidences == sorted(confidences, reverse=True)

    def test_empty_query_raises(self, engine):
        with pytest.raises(EmptyQueryError):
            engine.search(KeywordQuery(()))

    def test_no_match_query(self, engine):
        result = engine.search(KeywordQuery(("gene", "JW9999")))
        assert result.tuples == []

    def test_scope_restricts_answers(self, engine):
        scope = SearchScope.from_refs([TupleRef("Gene", 2)])
        result = engine.search(KeywordQuery(("gene", "JW0013")), scope=scope)
        assert TupleRef("Gene", 1) not in result.refs

    def test_scope_allows_in_scope_answer(self, engine):
        scope = SearchScope.from_refs([TupleRef("Gene", 1)])
        result = engine.search(KeywordQuery(("gene", "JW0013")), scope=scope)
        assert TupleRef("Gene", 1) in result.refs


class TestSearchScope:
    def test_allows(self):
        scope = SearchScope.from_refs([TupleRef("Gene", 1), TupleRef("Protein", 2)])
        assert scope.allows("gene", 1)
        assert not scope.allows("Gene", 2)
        assert not scope.allows("Other", 1)

    def test_sql_filters_literal(self):
        scope = SearchScope.from_refs([TupleRef("Gene", 2), TupleRef("Gene", 1)])
        assert scope.sql_filters()["gene"] == "rowid IN (1, 2)"

    def test_sql_filters_physical(self):
        scope = SearchScope.from_refs(
            [TupleRef("Gene", 1)], physical={"gene": "_minidb_Gene"}
        )
        assert scope.sql_filters()["gene"] == 'rowid IN (SELECT rowid FROM "_minidb_Gene")'

    def test_size(self):
        scope = SearchScope.from_refs([TupleRef("Gene", 1), TupleRef("Gene", 2)])
        assert scope.size() == 2
