"""Unit tests for the SQLite annotation store."""

import pytest

from repro.annotations.store import AnnotationStore, AttachmentKind
from repro.errors import (
    StorageError,
    UnknownAnnotationError,
    UnknownColumnError,
    UnknownTableError,
)
from repro.types import CellRef, TupleRef

from conftest import build_figure1_connection


@pytest.fixture
def store():
    return AnnotationStore(build_figure1_connection())


class TestAnnotations:
    def test_insert_and_get(self, store):
        annotation = store.insert_annotation("hello", author="bob")
        loaded = store.get_annotation(annotation.annotation_id)
        assert loaded.content == "hello"
        assert loaded.author == "bob"

    def test_sequence_increments(self, store):
        first = store.insert_annotation("a")
        second = store.insert_annotation("b")
        assert second.created_seq == first.created_seq + 1

    def test_empty_content_rejected(self, store):
        with pytest.raises(StorageError):
            store.insert_annotation("   ")

    def test_unknown_annotation(self, store):
        with pytest.raises(UnknownAnnotationError):
            store.get_annotation(999)

    def test_iter_in_insertion_order(self, store):
        ids = [store.insert_annotation(f"a{i}").annotation_id for i in range(3)]
        assert [a.annotation_id for a in store.iter_annotations()] == ids

    def test_count(self, store):
        assert store.count_annotations() == 0
        store.insert_annotation("x")
        assert store.count_annotations() == 1


class TestValidation:
    def test_table_case_insensitive(self, store):
        assert store.validate_table("gene") == "Gene"

    def test_unknown_table(self, store):
        with pytest.raises(UnknownTableError):
            store.validate_table("Nope")

    def test_column_case_insensitive(self, store):
        assert store.validate_column("gene", "gid") == "GID"

    def test_unknown_column(self, store):
        with pytest.raises(UnknownColumnError):
            store.validate_column("Gene", "Nope")

    def test_internal_tables_hidden(self, store):
        with pytest.raises(UnknownTableError):
            store.validate_table("_nebula_annotations")


class TestAttachments:
    def test_row_attachment(self, store):
        a = store.insert_annotation("x")
        attachment = store.attach(a.annotation_id, CellRef("Gene", 1))
        assert attachment.kind is AttachmentKind.TRUE
        assert attachment.confidence == 1.0
        assert attachment.tuple_ref == TupleRef("Gene", 1)

    def test_cell_attachment(self, store):
        a = store.insert_annotation("x")
        attachment = store.attach(a.annotation_id, CellRef("Gene", 1, "Name"))
        assert attachment.column == "Name"

    def test_column_attachment_has_no_tuple_ref(self, store):
        a = store.insert_annotation("x")
        attachment = store.attach(a.annotation_id, CellRef("Gene", None, "Family"))
        assert attachment.tuple_ref is None

    def test_true_attachment_forces_confidence_one(self, store):
        a = store.insert_annotation("x")
        attachment = store.attach(
            a.annotation_id, CellRef("Gene", 1), confidence=0.4, kind=AttachmentKind.TRUE
        )
        assert attachment.confidence == 1.0

    def test_predicted_requires_confidence_below_one(self, store):
        a = store.insert_annotation("x")
        with pytest.raises(StorageError):
            store.attach(
                a.annotation_id, CellRef("Gene", 1), confidence=1.0,
                kind=AttachmentKind.PREDICTED,
            )

    def test_duplicate_attach_idempotent(self, store):
        a = store.insert_annotation("x")
        first = store.attach(a.annotation_id, CellRef("Gene", 1))
        second = store.attach(a.annotation_id, CellRef("Gene", 1))
        assert first.attachment_id == second.attachment_id
        assert store.count_attachments() == 1

    def test_reattach_upgrades_predicted_to_true(self, store):
        a = store.insert_annotation("x")
        predicted = store.attach(
            a.annotation_id, CellRef("Gene", 1), confidence=0.5,
            kind=AttachmentKind.PREDICTED,
        )
        upgraded = store.attach(a.annotation_id, CellRef("Gene", 1))
        assert upgraded.attachment_id == predicted.attachment_id
        assert upgraded.kind is AttachmentKind.TRUE
        assert upgraded.confidence == 1.0

    def test_true_never_downgrades(self, store):
        a = store.insert_annotation("x")
        store.attach(a.annotation_id, CellRef("Gene", 1))
        again = store.attach(
            a.annotation_id, CellRef("Gene", 1), confidence=0.3,
            kind=AttachmentKind.PREDICTED,
        )
        assert again.kind is AttachmentKind.TRUE

    def test_detach(self, store):
        a = store.insert_annotation("x")
        attachment = store.attach(a.annotation_id, CellRef("Gene", 1))
        assert store.detach(attachment.attachment_id)
        assert not store.detach(attachment.attachment_id)
        assert store.count_attachments() == 0

    def test_promote(self, store):
        a = store.insert_annotation("x")
        predicted = store.attach(
            a.annotation_id, CellRef("Gene", 2), confidence=0.7,
            kind=AttachmentKind.PREDICTED,
        )
        store.promote(predicted.attachment_id)
        (loaded,) = store.attachments_of(a.annotation_id)
        assert loaded.kind is AttachmentKind.TRUE

    def test_promote_unknown(self, store):
        with pytest.raises(StorageError):
            store.promote(12345)

    def test_attachments_on_row_includes_column_level(self, store):
        a = store.insert_annotation("row")
        b = store.insert_annotation("column")
        store.attach(a.annotation_id, CellRef("Gene", 1))
        store.attach(b.annotation_id, CellRef("Gene", None, "Family"))
        found = store.attachments_on("Gene", rowid=1)
        assert {x.annotation_id for x in found} == {a.annotation_id, b.annotation_id}

    def test_attachments_on_other_row_excluded(self, store):
        a = store.insert_annotation("row")
        store.attach(a.annotation_id, CellRef("Gene", 1))
        assert store.attachments_on("Gene", rowid=2) == []

    def test_true_attachment_pairs(self, store):
        a = store.insert_annotation("x")
        store.attach(a.annotation_id, CellRef("Gene", 1))
        store.attach(
            a.annotation_id, CellRef("Gene", 2), confidence=0.5,
            kind=AttachmentKind.PREDICTED,
        )
        pairs = store.true_attachment_pairs()
        assert pairs == [(a.annotation_id, TupleRef("Gene", 1))]

    def test_count_by_kind(self, store):
        a = store.insert_annotation("x")
        store.attach(a.annotation_id, CellRef("Gene", 1))
        store.attach(
            a.annotation_id, CellRef("Gene", 2), confidence=0.5,
            kind=AttachmentKind.PREDICTED,
        )
        assert store.count_attachments(AttachmentKind.TRUE) == 1
        assert store.count_attachments(AttachmentKind.PREDICTED) == 1
        assert store.count_attachments() == 2
