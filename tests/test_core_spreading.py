"""Unit tests for the mini database and focal-based spreading search."""

import pytest

from repro.core.acg import AnnotationsConnectivityGraph
from repro.core.spreading import MiniDatabase, select_radius, spreading_scope
from repro.core.acg import HopProfile
from repro.types import TupleRef

from conftest import build_figure1_connection


@pytest.fixture
def connection():
    return build_figure1_connection()


@pytest.fixture
def chain_acg():
    # Gene#1 - Gene#2 - Gene#3 - Gene#4, plus isolated Protein#1 edge.
    acg = AnnotationsConnectivityGraph()
    for ann, (a, b) in enumerate([(1, 2), (2, 3), (3, 4)], start=1):
        acg.add_attachment(ann, TupleRef("Gene", a))
        acg.add_attachment(ann, TupleRef("Gene", b))
    acg.add_attachment(9, TupleRef("Protein", 1))
    acg.add_attachment(9, TupleRef("Gene", 4))
    return acg


class TestMiniDatabase:
    def test_materializes_with_preserved_rowids(self, connection):
        refs = [TupleRef("Gene", 2), TupleRef("Gene", 5)]
        mini = MiniDatabase.materialize(connection, refs)
        rows = connection.execute(
            f"SELECT rowid, GID FROM {mini.tables['Gene']} ORDER BY rowid"
        ).fetchall()
        assert rows == [(2, "JW0014"), (5, "JW0019")]

    def test_row_counts(self, connection):
        mini = MiniDatabase.materialize(
            connection, [TupleRef("Gene", 1), TupleRef("Protein", 1)]
        )
        assert mini.row_counts == {"Gene": 1, "Protein": 1}
        assert mini.total_rows == 2

    def test_drop_removes_tables(self, connection):
        mini = MiniDatabase.materialize(connection, [TupleRef("Gene", 1)])
        name = mini.tables["Gene"]
        mini.drop()
        with pytest.raises(Exception):
            connection.execute(f"SELECT * FROM {name}")

    def test_context_manager(self, connection):
        with MiniDatabase.materialize(connection, [TupleRef("Gene", 1)]) as mini:
            assert mini.total_rows == 1
        assert mini.tables == {}

    def test_rematerialization_overwrites(self, connection):
        MiniDatabase.materialize(connection, [TupleRef("Gene", 1)])
        mini = MiniDatabase.materialize(connection, [TupleRef("Gene", 2)])
        rows = connection.execute(f"SELECT rowid FROM {mini.tables['Gene']}").fetchall()
        assert rows == [(2,)]


class TestSpreadingScope:
    def test_scope_covers_k_hop(self, connection, chain_acg):
        focal = [TupleRef("Gene", 1)]
        scope, mini = spreading_scope(connection, chain_acg, focal, k=2)
        assert scope.allows("Gene", 1)
        assert scope.allows("Gene", 3)
        assert not scope.allows("Gene", 4)
        mini.drop()

    def test_focal_included_even_if_not_in_acg(self, connection, chain_acg):
        focal = [TupleRef("Gene", 6)]  # not annotated yet
        scope, mini = spreading_scope(connection, chain_acg, focal, k=2)
        assert scope.allows("Gene", 6)
        mini.drop()

    def test_scope_uses_physical_minidb(self, connection, chain_acg):
        scope, mini = spreading_scope(
            connection, chain_acg, [TupleRef("Gene", 1)], k=1
        )
        assert 'SELECT rowid FROM "_minidb_Gene"' in scope.sql_filters()["gene"]
        mini.drop()

    def test_no_materialization_mode(self, connection, chain_acg):
        scope, mini = spreading_scope(
            connection, chain_acg, [TupleRef("Gene", 1)], k=1, materialize=False
        )
        assert mini is None
        assert "rowid IN (" in scope.sql_filters()["gene"]

    def test_cross_table_neighbors_included(self, connection, chain_acg):
        scope, mini = spreading_scope(
            connection, chain_acg, [TupleRef("Gene", 4)], k=1
        )
        assert scope.allows("Protein", 1)
        mini.drop()


class TestSelectRadius:
    def test_profile_guided(self):
        profile = HopProfile()
        for hops in [1] * 80 + [2] * 15 + [3] * 5:
            profile.record(hops)
        assert select_radius(profile, 0.90, fallback=7) == 2

    def test_fallback_without_profile(self):
        assert select_radius(None, 0.9, fallback=3) == 3
        assert select_radius(HopProfile(), 0.9, fallback=3) == 3
