"""The service telemetry plane (PR 7): per-request trace propagation,
streaming quantiles, the structured event log, Prometheus exposition,
and the HTTP endpoint.

The invariants proved here:

* every accepted submission is traceable end-to-end by one unique
  ``request_id`` — stamped on the report, resolvable through span links
  to exactly one writer flush, correlated in the event log, and (on
  failure) recorded on its dead-letter row;
* ``/metrics`` renders a valid exposition *while ingestion is live*,
  with cumulative-monotone histogram buckets;
* the quantile estimators are exact over their retained window and
  survive snapshot/restore.
"""

import json
import threading

import pytest

from repro import (
    AnnotationService,
    ChaosHarness,
    FaultInjector,
    Nebula,
    NebulaConfig,
    ServiceConfig,
    generate_bio_database,
)
from repro.datagen.biodb import BioDatabaseSpec
from repro.errors import PipelineStageError
from repro.observability import (
    EVENT_KINDS,
    EventLog,
    ExpositionError,
    MetricsRegistry,
    PhaseQuantiles,
    StreamingQuantiles,
    TelemetryServer,
    iter_spans,
    parse_exposition,
    read_jsonl_events,
    render_health_gauges,
    render_metrics,
    scrape,
    set_metrics,
    validate_exposition,
)
from repro.service import mint_batch_id, mint_request_id


@pytest.fixture()
def metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


@pytest.fixture()
def db(storage_backend):
    return generate_bio_database(
        BioDatabaseSpec(genes=30, proteins=18, publications=100, seed=31),
        backend=storage_backend,
    )


@pytest.fixture()
def faults():
    return FaultInjector()


@pytest.fixture()
def nebula(db, storage_backend, faults, metrics):
    """A traced engine: the suite asserts on exported span trees."""
    engine = Nebula(
        storage_backend,
        db.meta,
        NebulaConfig(
            epsilon=0.6,
            tracing=True,
            trace_buffer_size=256,
            fault_injector=faults,
        ),
        aliases=db.aliases,
    )
    yield engine
    engine.close()


def make_service(nebula, **overrides):
    defaults = dict(queue_capacity=32, max_batch=8, flush_interval=0.02)
    defaults.update(overrides)
    return AnnotationService(nebula, ServiceConfig(**defaults))


def texts(db, n, tag="note"):
    genes = db.genes
    return [
        f"{tag} {i}: gene {genes[i % len(genes)].gid} looks interesting"
        for i in range(n)
    ]


def flush_spans(nebula):
    """Every service flush span (batched or isolated) in the ring buffer."""
    spans = []
    for record in nebula.trace_buffer.last(256):
        for span in iter_spans(record):
            if span["name"] in ("service.batch_flush", "service.request"):
                spans.append(span)
    return spans


# ----------------------------------------------------------------------
# Request-id minting
# ----------------------------------------------------------------------


class TestRequestIds:
    def test_request_ids_are_unique_and_typed(self):
        ids = {mint_request_id() for _ in range(1000)}
        assert len(ids) == 1000
        assert all(i.startswith("req-") for i in ids)

    def test_batch_ids_use_a_distinct_namespace(self):
        assert mint_batch_id().startswith("batch-")
        assert mint_batch_id() != mint_batch_id()

    def test_minting_is_thread_safe(self):
        seen = []
        lock = threading.Lock()

        def mint(n=200):
            local = [mint_request_id() for _ in range(n)]
            with lock:
                seen.extend(local)

        threads = [threading.Thread(target=mint) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(seen)) == len(seen) == 1600


# ----------------------------------------------------------------------
# End-to-end trace propagation
# ----------------------------------------------------------------------


class TestTracePropagation:
    def test_concurrent_clients_trace_end_to_end(self, db, nebula):
        """≥4 client threads: every report carries a unique request_id
        whose span links resolve to exactly one writer flush."""
        service = make_service(nebula).start()
        reports = []
        lock = threading.Lock()

        def client(c):
            for i in range(5):
                gid = db.genes[(c * 5 + i) % len(db.genes)].gid
                report = service.ingest(
                    f"client {c} note {i}: gene {gid}", timeout=30.0
                )
                with lock:
                    reports.append(report)

        threads = [
            threading.Thread(target=client, args=(c,)) for c in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert service.stop() is True

        ids = [report.request_id for report in reports]
        assert len(ids) == 20
        assert len(set(ids)) == 20, "request ids must be unique"
        assert all(rid and rid.startswith("req-") for rid in ids)

        resolved = {}
        for span in flush_spans(nebula):
            for link in span.get("links", []):
                rid = link.get("request_id")
                if rid is not None:
                    resolved.setdefault(rid, []).append(span)
        for rid in ids:
            assert len(resolved.get(rid, [])) == 1, (
                f"{rid} must link to exactly one flush span"
            )

    def test_events_correlate_request_to_its_batch(self, db, nebula):
        service = make_service(nebula).start()
        report = service.ingest(texts(db, 1)[0], timeout=30.0)
        assert service.stop() is True
        rid = report.request_id
        records = service.events.for_request(rid)
        kinds = [record["kind"] for record in records]
        assert "request_admitted" in kinds
        assert "request_flushed" in kinds
        assert "batch_flushed" in kinds
        flushed = next(r for r in records if r["kind"] == "request_flushed")
        batch = next(r for r in records if r["kind"] == "batch_flushed")
        assert flushed["batch_id"] == batch["batch_id"]
        assert rid in batch["request_ids"]
        assert flushed["batch_id"].startswith("batch-")
        assert flushed["e2e_seconds"] >= 0.0

    def test_latency_phases_recorded_per_request(self, db, nebula):
        service = make_service(nebula).start()
        for text in texts(db, 4):
            service.ingest(text, timeout=30.0)
        stats = service.stats()
        service.stop()
        counts = service.latency.counts()
        assert counts["queue"] == 4
        assert counts["e2e"] == 4
        assert counts["flush"] >= 1
        for phases in (
            stats.queue_wait_seconds, stats.flush_seconds, stats.e2e_seconds
        ):
            assert set(phases) == {"p50", "p95", "p99"}
            assert 0.0 <= phases["p50"] <= phases["p95"] <= phases["p99"]
        health = service.health()
        assert set(health["latency_seconds"]) == {"queue", "flush", "e2e"}


# ----------------------------------------------------------------------
# Chaos: failures stay correlated
# ----------------------------------------------------------------------


class TestChaosCorrelation:
    def test_dead_letter_rows_carry_the_request_id(self, db, nebula, faults):
        service = make_service(nebula)
        tickets = [service.submit(text) for text in texts(db, 3)]
        # Firing 1 poisons the batch; firing 2 hits the first member on
        # the per-request fallback path and dead-letters it alone.
        faults.arm("queue.triage", times=2)
        service.start()
        outcomes = []
        for ticket in tickets:
            try:
                outcomes.append(ticket.result(timeout=10.0))
            except PipelineStageError as error:
                outcomes.append((ticket, error))
        service.stop()
        failures = [o for o in outcomes if isinstance(o, tuple)]
        assert len(failures) == 1
        ticket, error = failures[0]
        assert error.dead_letter_id is not None

        letters = nebula.dead_letters.for_request(ticket.request_id)
        assert [letter.letter_id for letter in letters] == [
            error.dead_letter_id
        ]
        assert letters[0].request_id == ticket.request_id

        records = service.events.for_request(ticket.request_id)
        kinds = [record["kind"] for record in records]
        assert "request_dead_lettered" in kinds
        assert "request_failed" in kinds
        lettered = next(
            r for r in records if r["kind"] == "request_dead_lettered"
        )
        assert lettered["letter_id"] == error.dead_letter_id
        assert lettered["stage"] == "queue.triage"
        # The isolated retry ran under a per-request span linked back to
        # the poisoned batch.
        isolated = [
            span
            for span in flush_spans(nebula)
            if span["name"] == "service.request"
            and span["attributes"].get("request_id") == ticket.request_id
        ]
        assert len(isolated) == 1
        assert isolated[0]["links"][0]["batch_id"].startswith("batch-")

    def test_rejection_and_expiry_emit_correlated_events(
        self, db, nebula, faults
    ):
        chaos = ChaosHarness(faults)
        service = make_service(
            nebula, queue_capacity=2, max_batch=1, flush_interval=0.01
        ).start()
        chaos.writer_stall(seconds=0.3, times=-1)
        admitted, rejected = [], []
        for text in texts(db, 8):
            try:
                admitted.append(service.submit(text, deadline=30.0))
            except Exception:
                rejected.append(text)
        assert rejected, "a stalled writer must overflow the tiny queue"
        faults.reset()
        service.stop()
        kinds = {record["kind"] for record in service.events.tail(200)}
        assert "request_rejected" in kinds
        rejected_events = service.events.tail(200, kind="request_rejected")
        assert all(
            event["request_id"].startswith("req-")
            for event in rejected_events
        )


# ----------------------------------------------------------------------
# Streaming quantiles
# ----------------------------------------------------------------------


class TestStreamingQuantiles:
    def test_exact_over_small_window(self):
        est = StreamingQuantiles(window=100)
        for v in range(1, 101):
            est.observe(float(v))
        assert est.quantile(0.0) == 1.0
        assert est.quantile(1.0) == 100.0
        assert est.quantile(0.5) == pytest.approx(50.5)
        p = est.percentiles()
        assert p["p95"] == pytest.approx(95.05)
        assert p["p50"] <= p["p95"] <= p["p99"]

    def test_window_evicts_oldest(self):
        est = StreamingQuantiles(window=4)
        for v in (100.0, 1.0, 2.0, 3.0, 4.0):  # 100.0 falls out
            est.observe(v)
        assert len(est) == 4
        assert est.count == 5
        assert est.quantile(1.0) == 4.0

    def test_empty_window_reads_zero(self):
        est = StreamingQuantiles(window=8)
        assert est.quantile(0.99) == 0.0
        assert est.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            StreamingQuantiles(window=0)
        with pytest.raises(ValueError):
            StreamingQuantiles(window=4).quantile(1.5)

    def test_snapshot_restore_round_trip(self):
        est = StreamingQuantiles(window=4)
        for v in (5.0, 1.0, 2.0, 3.0, 4.0):
            est.observe(v)
        dump = json.loads(json.dumps(est.snapshot()))
        revived = StreamingQuantiles(window=4)
        revived.restore(dump)
        assert revived.count == est.count
        assert revived.percentiles() == est.percentiles()

    def test_phase_quantiles_publish_gauges(self, metrics):
        latency = PhaseQuantiles(
            metrics, "nebula_test_latency_seconds", ("queue", "e2e"), window=16
        )
        for v in (0.1, 0.2, 0.3):
            latency.observe("queue", v)
        latency.publish()
        gauge = metrics.gauge(
            "nebula_test_latency_seconds",
            {"phase": "queue", "quantile": "p50"},
        )
        assert gauge.value == pytest.approx(0.2)
        # Unobserved phases publish zeros rather than vanishing.
        assert (
            metrics.gauge(
                "nebula_test_latency_seconds",
                {"phase": "e2e", "quantile": "p99"},
            ).value
            == 0.0
        )
        assert latency.counts() == {"queue": 3, "e2e": 0}


# ----------------------------------------------------------------------
# Event log
# ----------------------------------------------------------------------


class TestEventLog:
    def test_ring_is_bounded_and_counts_drops(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit("request_admitted", request_id=f"req-{i}")
        assert len(log) == 4
        assert log.emitted == 10
        assert log.dropped == 6
        assert [r["request_id"] for r in log.tail(10)] == [
            "req-6", "req-7", "req-8", "req-9"
        ]

    def test_unknown_kinds_recorded_for_forward_compatibility(self):
        log = EventLog()
        record = log.emit("future_kind", request_id="req-x")
        assert record["kind"] == "future_kind"
        assert log.tail(1, kind="future_kind") == [record]
        # The service's own vocabulary is closed over EVENT_KINDS.
        assert "batch_flushed" in EVENT_KINDS
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_for_request_matches_direct_and_batch_membership(self):
        log = EventLog()
        log.emit("request_admitted", request_id="req-a")
        log.emit("batch_flushed", batch_id="batch-1",
                 request_ids=["req-a", "req-b"])
        log.emit("request_admitted", request_id="req-c")
        assert [r["kind"] for r in log.for_request("req-a")] == [
            "request_admitted", "batch_flushed"
        ]
        assert [r["kind"] for r in log.for_request("req-b")] == [
            "batch_flushed"
        ]

    def test_jsonl_sink_round_trips(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(capacity=8, path=path, clock=lambda: 123.0)
        log.emit("shed_engaged", queue_depth=9)
        log.emit("shed_released", queue_depth=1)
        records = read_jsonl_events(path)
        assert [r["kind"] for r in records] == [
            "shed_engaged", "shed_released"
        ]
        assert records[0]["ts"] == 123.0
        assert records[0]["seq"] < records[1]["seq"]

    def test_malformed_jsonl_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "slow_op", "ts": 1, "seq": 0}\nnot json\n')
        with pytest.raises(ValueError):
            read_jsonl_events(str(path))

    def test_service_event_log_spills_to_jsonl(self, db, nebula, tmp_path):
        path = str(tmp_path / "service-events.jsonl")
        service = make_service(nebula, event_log_path=path).start()
        report = service.ingest(texts(db, 1)[0], timeout=30.0)
        service.stop()
        records = read_jsonl_events(path)
        assert any(
            r["kind"] == "request_flushed"
            and r["request_id"] == report.request_id
            for r in records
        )


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------


class TestExposition:
    def test_render_parses_and_validates(self, metrics):
        metrics.counter("nebula_requests_total").inc(3)
        metrics.gauge("nebula_queue_depth").set(2)
        histogram = metrics.histogram(
            "nebula_wait_seconds", (0.1, 1.0), {"phase": "queue"}
        )
        for v in (0.05, 0.5, 5.0):
            histogram.observe(v)
        text = render_metrics(metrics)
        families = parse_exposition(text)
        validate_exposition(text)
        assert families["nebula_requests_total"].value() == 3.0
        assert families["nebula_queue_depth"].value() == 2.0
        wait = families["nebula_wait_seconds"]
        # Buckets render cumulative: 1, 2, +Inf=3 == _count.
        buckets = wait.samples["nebula_wait_seconds_bucket"]
        assert [v for _, v in buckets] == [1.0, 2.0, 3.0]
        assert wait.samples["nebula_wait_seconds_sum"][0][1] == pytest.approx(5.55)
        assert wait.samples["nebula_wait_seconds_count"][0][1] == 3.0

    def test_health_gauges_ride_along(self):
        text = render_health_gauges(
            {"status": "ok", "backend": "sqlite-file", "ready": True}
        )
        families = parse_exposition(text)
        assert families["nebula_service_up"].value() == 1.0
        assert families["nebula_service_ready"].value() == 1.0
        info = families["nebula_service_info"]
        assert info.value({"backend": "sqlite-file", "status": "ok"}) == 1.0
        crashed = parse_exposition(
            render_health_gauges({"status": "crashed", "ready": False})
        )
        assert crashed["nebula_service_up"].value() == 0.0

    @pytest.mark.parametrize(
        "bad",
        [
            "# TYPE nebula_x counter\nnebula_x{oops 1\n",
            "# TYPE nebula_x\n",
            "nebula_x_bucket{le=\"1\"} 2\nnebula_x_bucket{le=\"+Inf\"} 1\n"
            "nebula_x_count 1\nnebula_x_sum 1\n"
            "# TYPE nebula_x histogram\n",
        ],
    )
    def test_malformed_or_inconsistent_rejected(self, bad):
        with pytest.raises(ExpositionError):
            parse_exposition(bad)
            validate_exposition(bad)

    def test_non_monotone_buckets_rejected(self):
        bad = (
            "# TYPE nebula_x histogram\n"
            'nebula_x_bucket{le="1"} 5\n'
            'nebula_x_bucket{le="+Inf"} 3\n'
            "nebula_x_sum 1\n"
            "nebula_x_count 3\n"
        )
        with pytest.raises(ExpositionError):
            validate_exposition(bad)


# ----------------------------------------------------------------------
# The HTTP endpoint
# ----------------------------------------------------------------------


class TestTelemetryServer:
    def test_endpoints_serve_and_404(self):
        body = "# TYPE nebula_up gauge\nnebula_up 1\n"
        with TelemetryServer(
            lambda: body,
            lambda: {"status": "ok", "ready": True},
            lambda: True,
        ) as server:
            assert scrape(server.url + "metrics") == body
            health = json.loads(scrape(server.url + "healthz"))
            assert health["status"] == "ok"
            assert scrape(server.url + "readyz") == "ready\n"
            with pytest.raises(Exception):
                scrape(server.url + "nope")

    def test_crashed_service_fails_the_health_probe(self):
        import urllib.error

        with TelemetryServer(
            lambda: "", lambda: {"status": "crashed"}, lambda: False
        ) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                scrape(server.url + "healthz")
            assert excinfo.value.code == 503
            with pytest.raises(urllib.error.HTTPError):
                scrape(server.url + "readyz")

    def test_live_scrape_during_ingestion(self, db, nebula):
        """The acceptance gate: /metrics stays valid mid-ingestion."""
        service = make_service(nebula).start()
        server = service.serve_metrics(port=0)
        stop = threading.Event()

        def churn():
            i = 0
            while not stop.is_set():
                gid = db.genes[i % len(db.genes)].gid
                service.ingest(f"churn {i}: gene {gid}", timeout=30.0)
                i += 1

        worker = threading.Thread(target=churn)
        worker.start()
        try:
            for _ in range(3):
                text = scrape(server.url + "metrics")
                validate_exposition(text)
                families = parse_exposition(text)
                assert families["nebula_service_up"].value() == 1.0
                assert "nebula_service_latency_seconds" in families
        finally:
            stop.set()
            worker.join()
            server.stop()
            service.stop()
        final = parse_exposition(service.render_exposition())
        submitted = final["nebula_service_submitted_total"].value()
        ingested = final["nebula_service_ingested_total"].value()
        assert submitted == ingested >= 1.0
