"""Unit tests for verification tasks, triage, and expert resolution."""

import pytest

from repro.annotations.engine import AnnotationManager
from repro.core.acg import AnnotationsConnectivityGraph, HopProfile
from repro.core.verification import Decision, VerificationQueue
from repro.errors import UnknownVerificationTaskError, VerificationError
from repro.types import CellRef, ScoredTuple, TupleRef

from conftest import build_figure1_connection


@pytest.fixture
def world():
    connection = build_figure1_connection()
    manager = AnnotationManager(connection)
    acg = AnnotationsConnectivityGraph()
    profile = HopProfile()
    queue = VerificationQueue(manager, acg=acg, profile=profile)
    annotation = manager.add_annotation("note", attach_to=[CellRef("Gene", 1)])
    acg.add_attachment(annotation.annotation_id, TupleRef("Gene", 1))
    # Seed the ACG so hop distances are defined: Gene#1 - Gene#2.
    acg.add_attachment(77, TupleRef("Gene", 1))
    acg.add_attachment(77, TupleRef("Gene", 2))
    return manager, acg, profile, queue, annotation


def _candidates():
    return [
        ScoredTuple(TupleRef("Gene", 2), 0.95, ("q1",)),   # auto-accept
        ScoredTuple(TupleRef("Gene", 3), 0.60, ("q2",)),   # pending
        ScoredTuple(TupleRef("Gene", 4), 0.10, ("q3",)),   # auto-reject
    ]


class TestTriage:
    def test_banding(self, world):
        manager, acg, profile, queue, annotation = world
        tasks = queue.triage(
            annotation.annotation_id, _candidates(), beta_lower=0.32, beta_upper=0.86
        )
        decisions = {t.ref.rowid: t.decision for t in tasks}
        assert decisions[2] is Decision.AUTO_ACCEPTED
        assert decisions[3] is Decision.PENDING
        assert decisions[4] is Decision.AUTO_REJECTED

    def test_focal_candidates_skipped(self, world):
        manager, acg, profile, queue, annotation = world
        tasks = queue.triage(
            annotation.annotation_id,
            [ScoredTuple(TupleRef("Gene", 1), 1.0, ())],
            beta_lower=0.32,
            beta_upper=0.86,
        )
        assert tasks == []

    def test_auto_accept_attaches_true(self, world):
        manager, acg, profile, queue, annotation = world
        queue.triage(annotation.annotation_id, _candidates(), 0.32, 0.86)
        assert TupleRef("Gene", 2) in manager.focal_of(annotation.annotation_id)

    def test_auto_accept_updates_acg_and_profile(self, world):
        manager, acg, profile, queue, annotation = world
        queue.triage(annotation.annotation_id, _candidates(), 0.32, 0.86)
        # The accepted tuple now shares the annotation with the focal.
        assert annotation.annotation_id in acg.annotations_of(TupleRef("Gene", 2))
        # Gene#2 was 1 hop from the focal before the acceptance.
        assert profile.buckets.get(1) == 1

    def test_auto_accept_creates_new_acg_edge(self, world):
        manager, acg, profile, queue, annotation = world
        edges_before = acg.edge_count
        queue.triage(
            annotation.annotation_id,
            [ScoredTuple(TupleRef("Gene", 7), 0.95, ())],  # no prior edge
            0.32,
            0.86,
        )
        assert acg.edge_count == edges_before + 1

    def test_pending_stores_predicted_edge(self, world):
        manager, acg, profile, queue, annotation = world
        queue.triage(annotation.annotation_id, _candidates(), 0.32, 0.86)
        predicted = manager.pending_predicted(annotation.annotation_id)
        assert [a.tuple_ref for a in predicted] == [TupleRef("Gene", 3)]

    def test_rejected_leaves_no_edge(self, world):
        manager, acg, profile, queue, annotation = world
        queue.triage(annotation.annotation_id, _candidates(), 0.32, 0.86)
        assert TupleRef("Gene", 4) not in manager.focal_of(annotation.annotation_id)

    def test_invalid_bounds(self, world):
        manager, acg, profile, queue, annotation = world
        with pytest.raises(VerificationError):
            queue.triage(annotation.annotation_id, [], 0.9, 0.3)

    def test_boundary_values_go_to_pending(self, world):
        manager, acg, profile, queue, annotation = world
        tasks = queue.triage(
            annotation.annotation_id,
            [ScoredTuple(TupleRef("Gene", 5), 0.32, ()),
             ScoredTuple(TupleRef("Gene", 6), 0.86, ())],
            beta_lower=0.32,
            beta_upper=0.86,
        )
        assert all(t.decision is Decision.PENDING for t in tasks)


class TestExpertResolution:
    def test_verify_promotes(self, world):
        manager, acg, profile, queue, annotation = world
        tasks = queue.triage(annotation.annotation_id, _candidates(), 0.32, 0.86)
        pending = next(t for t in tasks if t.decision is Decision.PENDING)
        resolved = queue.verify(pending.task_id)
        assert resolved.decision is Decision.VERIFIED
        assert TupleRef("Gene", 3) in manager.focal_of(annotation.annotation_id)
        assert queue.pending(annotation.annotation_id) == []

    def test_reject_discards(self, world):
        manager, acg, profile, queue, annotation = world
        tasks = queue.triage(annotation.annotation_id, _candidates(), 0.32, 0.86)
        pending = next(t for t in tasks if t.decision is Decision.PENDING)
        queue.reject(pending.task_id)
        assert manager.pending_predicted(annotation.annotation_id) == []
        assert TupleRef("Gene", 3) not in manager.focal_of(annotation.annotation_id)

    def test_double_resolution_fails(self, world):
        manager, acg, profile, queue, annotation = world
        tasks = queue.triage(annotation.annotation_id, _candidates(), 0.32, 0.86)
        pending = next(t for t in tasks if t.decision is Decision.PENDING)
        queue.verify(pending.task_id)
        with pytest.raises(UnknownVerificationTaskError):
            queue.verify(pending.task_id)

    def test_unknown_task(self, world):
        *_, queue, _ = world
        with pytest.raises(UnknownVerificationTaskError):
            queue.reject(424242)

    def test_evidence_round_trips(self, world):
        manager, acg, profile, queue, annotation = world
        tasks = queue.triage(annotation.annotation_id, _candidates(), 0.32, 0.86)
        pending = queue.pending(annotation.annotation_id)
        assert pending[0].evidence == ("q2",)

    def test_tasks_of_reports_all_decisions(self, world):
        manager, acg, profile, queue, annotation = world
        queue.triage(annotation.annotation_id, _candidates(), 0.32, 0.86)
        tasks = queue.tasks_of(annotation.annotation_id)
        assert len(tasks) == 3
        assert {t.decision for t in tasks} == {
            Decision.AUTO_ACCEPTED, Decision.PENDING, Decision.AUTO_REJECTED,
        }


class TestDecision:
    def test_accepted_predicate(self):
        assert Decision.AUTO_ACCEPTED.is_accepted
        assert Decision.VERIFIED.is_accepted
        assert not Decision.REJECTED.is_accepted

    def test_resolved_predicate(self):
        assert not Decision.PENDING.is_resolved
        assert Decision.AUTO_REJECTED.is_resolved
