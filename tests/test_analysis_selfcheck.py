"""Self-check: the live source tree lints clean, and planted bugs don't.

These are the acceptance criteria for the analyzer itself: running it over
``src/`` must exit 0, while a tree with a planted f-string execute or an
inverted β-ordering must exit non-zero with the right rule id and line.
"""

import io
import json
import os

import repro
from repro.analysis import analyze_paths
from repro.analysis.cli import main as lint_main

SRC_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
PACKAGE_ROOT = os.path.join(SRC_ROOT, "repro")


class TestLiveTree:
    def test_src_tree_is_clean(self):
        findings = analyze_paths([PACKAGE_ROOT])
        assert findings == [], "\n".join(
            f"{f.rule_id} {f.path}:{f.line} {f.message}" for f in findings
        )

    def test_cli_exit_zero_on_src(self):
        out = io.StringIO()
        assert lint_main([PACKAGE_ROOT], out=out) == 0

    def test_cli_strict_exit_zero_on_src(self):
        out = io.StringIO()
        assert lint_main([PACKAGE_ROOT, "--strict"], out=out) == 0

    def test_strict_clean_includes_concurrency_rules(self):
        # NBL009–NBL012 specifically: the service plane was fixed (or
        # carries justified inline ignores), so the strict gate holds
        # with only the new rules enabled too.
        findings = analyze_paths(
            [PACKAGE_ROOT], rules=["NBL009", "NBL010", "NBL011", "NBL012"]
        )
        assert findings == [], "\n".join(
            f"{f.rule_id} {f.path}:{f.line} {f.message}" for f in findings
        )

    def test_strict_clean_includes_versioned_write_rule(self):
        # NBL013: every in-place write against the versioned head
        # tables lives inside repro/versioning/ — the commit log is the
        # single writer.
        findings = analyze_paths([PACKAGE_ROOT], rules=["NBL013"])
        assert findings == [], "\n".join(
            f"{f.rule_id} {f.path}:{f.line} {f.message}" for f in findings
        )


class TestPlantedViolations:
    def test_planted_fstring_execute_fails(self, tmp_path):
        planted = tmp_path / "planted.py"
        planted.write_text(
            "def fetch(conn, user):\n"
            "    return conn.execute(\n"
            "        f\"SELECT * FROM users WHERE name = '{user}'\"\n"
            "    ).fetchall()\n"
        )
        out = io.StringIO()
        assert lint_main([str(planted), "--json"], out=out) == 1
        findings = json.loads(out.getvalue())
        assert len(findings) == 1
        assert findings[0]["rule_id"] == "NBL001"
        assert findings[0]["line"] == 2  # the execute call site

    def test_planted_beta_inversion_fails(self, tmp_path):
        planted = tmp_path / "badconfig.py"
        planted.write_text(
            "class NebulaConfig:\n"
            "    beta1: float = 0.2\n"
            "    beta2: float = 0.6\n"
            "    beta3: float = 0.1\n"
        )
        out = io.StringIO()
        assert lint_main([str(planted), "--json"], out=out) == 1
        findings = json.loads(out.getvalue())
        assert [f["rule_id"] for f in findings] == ["NBL003"]
        assert findings[0]["line"] == 2
        assert "beta" in findings[0]["message"]

    def test_planted_violation_in_copy_of_tree(self, tmp_path):
        # Planting a bug next to clean files still surfaces exactly that bug.
        clean = tmp_path / "fine.py"
        clean.write_text(
            "def f(conn, name):\n"
            '    conn.execute("SELECT 1 WHERE name = ?", (name,))\n'
        )
        planted = tmp_path / "bad.py"
        planted.write_text(
            "def g(conn, where):\n"
            '    conn.execute("SELECT 1 WHERE " + where)\n'
        )
        findings = analyze_paths([str(tmp_path)])
        assert [(f.rule_id, os.path.basename(f.path), f.line) for f in findings] == [
            ("NBL001", "bad.py", 2)
        ]


class TestCliSurface:
    def test_list_rules_covers_all_thirteen(self):
        out = io.StringIO()
        assert lint_main(["--list-rules"], out=out) == 0
        text = out.getvalue()
        for rule_id in (
            "NBL001", "NBL002", "NBL003", "NBL004",
            "NBL005", "NBL006", "NBL007", "NBL008",
            "NBL009", "NBL010", "NBL011", "NBL012",
            "NBL013",
        ):
            assert rule_id in text

    def test_unknown_rule_exits_usage_error(self, tmp_path):
        target = tmp_path / "x.py"
        target.write_text("x = 1\n")
        out = io.StringIO()
        assert lint_main([str(target), "--rules", "NBL999"], out=out) == 2

    def test_missing_path_exits_usage_error(self, tmp_path):
        out = io.StringIO()
        assert lint_main([str(tmp_path / "nope.py")], out=out) == 2
