"""Integration tests: the experiment pipelines end to end (small scale).

These mirror the benchmark flows on a small database: workload generation,
distortion, discovery, oracle assessment, naive-baseline comparison, and
the approximate spreading search — asserting the *shape* properties the
paper reports rather than absolute numbers.
"""

import pytest

from repro import (
    BoundsSetting,
    Nebula,
    NebulaConfig,
    NaiveSearch,
    generate_bio_database,
    generate_workload,
)
from repro.core.assessment import assess, average_assessments
from repro.core.bounds import TrainingSample
from repro.datagen.biodb import BioDatabaseSpec
from repro.datagen.workload import WorkloadSpec


@pytest.fixture(scope="module")
def db():
    return generate_bio_database(
        BioDatabaseSpec(genes=80, proteins=48, publications=400, seed=17)
    )


@pytest.fixture(scope="module")
def workload(db):
    return generate_workload(db, WorkloadSpec(seed=29))


@pytest.fixture(scope="module")
def nebula(db):
    return Nebula(db.connection, db.meta, NebulaConfig(epsilon=0.6), aliases=db.aliases)


def _discover(nebula, annotation, delta=1, **kwargs):
    focal = annotation.focal(delta)
    report = nebula.analyze(annotation.text, focal=focal, **kwargs)
    return focal, report


class TestDiscoveryQuality:
    def test_most_missing_links_recovered(self, db, workload, nebula):
        """Nebula-0.6 must find the bulk of the dropped attachments."""
        recovered = total = 0
        for annotation in workload.group(100):
            focal, report = _discover(nebula, annotation, delta=1)
            missing = set(annotation.missing(focal))
            found = set(report.identified.refs)
            recovered += len(missing & found)
            total += len(missing)
        assert total > 0
        assert recovered / total >= 0.8

    def test_queries_track_reference_counts(self, workload, nebula):
        """More embedded references -> more generated queries (on average)."""
        def avg_queries(band):
            annotations = [
                a for a in workload.group(500) if a.band == band
            ]
            counts = [
                len(nebula.analyze(a.text).generation.queries) for a in annotations
            ]
            return sum(counts) / len(counts)

        assert avg_queries((7, 10)) > avg_queries((1, 3))

    def test_epsilon_08_generates_fewer_queries(self, db, workload):
        loose = Nebula(db.connection, db.meta, NebulaConfig(epsilon=0.6),
                       aliases=db.aliases)
        tight = Nebula(db.connection, db.meta, NebulaConfig(epsilon=0.8),
                       aliases=db.aliases)
        loose_total = tight_total = 0
        for annotation in workload.group(1000):
            loose_total += len(loose.analyze(annotation.text).generation.queries)
            tight_total += len(tight.analyze(annotation.text).generation.queries)
        assert tight_total <= loose_total

    def test_oracle_assessment_reasonable(self, workload, nebula):
        assessments = []
        for annotation in workload.group(100):
            focal, report = _discover(nebula, annotation, delta=1)
            assessments.append(
                assess(report.candidates, set(annotation.ideal_refs), focal,
                       0.32, 0.86)
            )
        averaged = average_assessments(assessments)
        assert averaged.f_n <= 0.35
        assert averaged.f_p <= 0.15


class TestNaiveComparison:
    def test_naive_returns_far_more_tuples(self, db, workload, nebula):
        annotation = workload.group(100)[0]
        naive = NaiveSearch(db.connection)
        naive_result = naive.search(annotation.text)
        report = nebula.analyze(annotation.text)
        assert len(naive_result.tuples) > 5 * max(1, len(report.candidates))

    def test_naive_is_slower(self, db, workload, nebula):
        annotation = workload.group(500)[0]
        naive = NaiveSearch(db.connection)
        naive_elapsed = naive.search(annotation.text).elapsed
        report = nebula.analyze(annotation.text)
        assert naive_elapsed > report.identified.elapsed


class TestSpreadingSearch:
    def test_spreading_shrinks_candidates_and_keeps_most_refs(
        self, db, workload, nebula
    ):
        kept = missing_total = 0
        full_candidates = spread_candidates = 0
        for annotation in workload.group(100):
            if len(annotation.ideal_refs) < 2:
                continue
            focal = annotation.focal(2)
            full = nebula.analyze(annotation.text, focal=focal, use_spreading=False)
            spread = nebula.analyze(
                annotation.text, focal=focal, use_spreading=True, radius=3
            )
            full_candidates += len(full.candidates)
            spread_candidates += len(spread.candidates)
            missing = set(annotation.missing(focal))
            kept += len(missing & set(spread.identified.refs))
            missing_total += len(missing)
        assert spread_candidates <= full_candidates
        if missing_total:
            assert kept / missing_total >= 0.6

    def test_radius_widens_scope(self, db, workload, nebula):
        annotation = next(
            a for a in workload.group(500) if len(a.ideal_refs) >= 3
        )
        focal = annotation.focal(2)
        narrow = nebula.analyze(
            annotation.text, focal=focal, use_spreading=True, radius=1
        )
        wide = nebula.analyze(
            annotation.text, focal=focal, use_spreading=True, radius=4
        )
        assert narrow.scope_size <= wide.scope_size


class TestBoundsTuningFlow:
    def test_tuned_bounds_form_a_band(self, db, workload, nebula):
        samples = []
        for annotation in workload.group(100) + workload.group(500):
            focal, report = _discover(nebula, annotation, delta=1)
            samples.append(
                TrainingSample(
                    candidates=tuple(report.candidates),
                    ideal=frozenset(annotation.ideal_refs),
                    focal=focal,
                )
            )
        choice = BoundsSetting(fn_limit=0.3, fp_limit=0.1).tune(samples)
        assert 0.0 <= choice.beta_lower <= choice.beta_upper <= 1.0
        assert choice.assessment.f_p <= 0.1


class TestQueryQualityOracle:
    def test_cutoff_06_has_no_false_negative_queries(self, workload, nebula):
        """Paper Fig. 11(c): epsilon <= 0.6 misses no embedded reference."""
        from repro.utils.tokenize import normalize_word

        missed = 0
        total = 0
        for annotation in workload.group(100):
            report = nebula.analyze(annotation.text)
            covered = {
                normalize_word(k)
                for q in report.generation.queries
                for k in q.keywords
            }
            for keyword in annotation.ideal_keywords:
                total += 1
                if keyword not in covered:
                    missed += 1
        assert total > 0
        assert missed / total <= 0.05
