"""Tests for verification-task explanations."""

import pytest

from repro import Nebula, NebulaConfig
from repro.core.explain import decode_evidence, explain_task, _context_window
from repro.core.verification import Decision

from conftest import build_figure1_connection, build_figure1_meta


@pytest.fixture
def world():
    connection = build_figure1_connection()
    nebula = Nebula(
        connection,
        build_figure1_meta(),
        NebulaConfig(epsilon=0.6, beta_lower=0.01, beta_upper=0.999),
    )
    return connection, nebula


class TestDecodeEvidence:
    def test_type2_label(self):
        text = "the gene JW0014 was strong"
        line = decode_evidence("q@2:type2:gene+JW0014", text)
        assert line is not None
        assert line.keywords == ("gene", "JW0014")
        assert "table + value" in line.description
        assert "JW0014" in line.context

    def test_backward_label(self):
        text = "genes JW0014 and later grpC too"
        line = decode_evidence("q@4:backward-type2:genes+grpC", text)
        assert line is not None
        assert "earlier table mention" in line.description

    def test_foreign_format_returns_none(self):
        assert decode_evidence("naive", "text") is None

    def test_unknown_kind_falls_back_to_raw_name(self):
        line = decode_evidence("q@0:newkind:a+b", "a b c")
        assert line is not None
        assert line.description == "newkind"


class TestContextWindow:
    def test_window_bounded(self):
        text = " ".join(f"w{i}" for i in range(40))
        window = _context_window(text, position=20, radius=3)
        assert window == "w17 w18 w19 w20 w21 w22 w23"

    def test_window_at_edges(self):
        text = "alpha beta gamma"
        assert _context_window(text, 0, radius=5) == "alpha beta gamma"
        assert _context_window(text, 2, radius=5) == "alpha beta gamma"

    def test_empty_text(self):
        assert _context_window("", 3) == ""


class TestExplainTask:
    def test_end_to_end_explanation(self, world):
        connection, nebula = world
        report = nebula.insert_annotation(
            "We examined genes JW0014, and later saw yaaB in the assay.",
            attach_to=[],
        )
        pending = [t for t in report.tasks if t.decision is Decision.PENDING]
        tasks = pending or report.tasks
        explanation = explain_task(nebula.manager, tasks[0])
        lines = explanation.lines()
        assert any("attach annotation" in line for line in lines)
        assert explanation.tuple_values  # row values present
        assert explanation.evidence
        assert all(e.keywords for e in explanation.evidence)

    def test_excerpt_truncated(self, world):
        connection, nebula = world
        long_text = "gene JW0014 " + "filler " * 200
        report = nebula.insert_annotation(long_text, attach_to=[])
        explanation = explain_task(nebula.manager, report.tasks[0], excerpt_length=50)
        assert len(explanation.annotation_excerpt) == 50
        assert explanation.annotation_excerpt.endswith("...")

    def test_tuple_values_match_database(self, world):
        connection, nebula = world
        report = nebula.insert_annotation("gene JW0014 here", attach_to=[])
        task = report.tasks[0]
        explanation = explain_task(nebula.manager, task)
        assert explanation.tuple_values["GID"] == "JW0014"
        assert explanation.tuple_values["Name"] == "groP"
