"""Unit tests for the annotated-database graph model."""

import pytest

from repro.annotations.engine import AnnotationManager
from repro.annotations.store import AttachmentKind
from repro.core.model import AnnotatedDatabaseModel
from repro.types import CellRef, TupleRef

from conftest import build_figure1_connection


@pytest.fixture
def world():
    manager = AnnotationManager(build_figure1_connection())
    a = manager.add_annotation("a", attach_to=[CellRef("Gene", 1), CellRef("Gene", 2)])
    b = manager.add_annotation("b", attach_to=[CellRef("Gene", 2)])
    manager.attach_predicted(b.annotation_id, CellRef("Gene", 3), 0.7)
    return manager, a, b


class TestEdges:
    def test_edges_cover_true_and_predicted(self, world):
        manager, a, b = world
        model = AnnotatedDatabaseModel(manager)
        edges = model.edges()
        assert len(edges) == 4
        kinds = {e.kind for e in edges}
        assert kinds == {AttachmentKind.TRUE, AttachmentKind.PREDICTED}

    def test_predicted_excludable(self, world):
        manager, *_ = world
        model = AnnotatedDatabaseModel(manager)
        assert len(model.edges(include_predicted=False)) == 3

    def test_edge_weights(self, world):
        manager, a, b = world
        model = AnnotatedDatabaseModel(manager)
        for edge in model.edges():
            if edge.kind is AttachmentKind.TRUE:
                assert edge.weight == 1.0
            else:
                assert edge.weight < 1.0

    def test_true_edge_keys(self, world):
        manager, a, b = world
        model = AnnotatedDatabaseModel(manager)
        assert (b.annotation_id, TupleRef("Gene", 3)) not in model.true_edge_keys()
        assert (a.annotation_id, TupleRef("Gene", 1)) in model.true_edge_keys()


class TestQuality:
    def test_quality_against_ideal(self, world):
        manager, a, b = world
        model = AnnotatedDatabaseModel(manager)
        ideal = {
            (a.annotation_id, TupleRef("Gene", 1)),
            (a.annotation_id, TupleRef("Gene", 2)),
            (b.annotation_id, TupleRef("Gene", 2)),
            (b.annotation_id, TupleRef("Gene", 4)),  # missing from store
        }
        f_n, f_p = model.quality(ideal)
        assert f_n == pytest.approx(1 / 4)  # Gene#4 link missing
        assert f_p == pytest.approx(1 / 4)  # the predicted Gene#3 edge

    def test_without_predictions_fp_zero(self, world):
        manager, a, b = world
        model = AnnotatedDatabaseModel(manager)
        ideal = model.true_edge_keys() | {(a.annotation_id, TupleRef("Gene", 7))}
        f_n, f_p = model.quality(ideal, include_predicted=False)
        assert f_p == 0.0
        assert f_n > 0.0


class TestDegrees:
    def test_annotation_degree(self, world):
        manager, a, b = world
        model = AnnotatedDatabaseModel(manager)
        degrees = model.annotation_degree()
        assert degrees[a.annotation_id] == 2
        assert degrees[b.annotation_id] == 2  # one true + one predicted

    def test_tuple_degree(self, world):
        manager, a, b = world
        model = AnnotatedDatabaseModel(manager)
        degrees = model.tuple_degree()
        assert degrees[TupleRef("Gene", 2)] == 2
        assert degrees[TupleRef("Gene", 3)] == 1
