"""Unit tests for the Naive baseline."""

import pytest

from repro.search.naive import NaiveSearch
from repro.types import TupleRef

from conftest import build_figure1_connection


@pytest.fixture
def naive():
    return NaiveSearch(build_figure1_connection())


class TestNaive:
    def test_finds_exact_reference(self, naive):
        result = naive.search("this comment is about grpC for sure")
        assert TupleRef("Gene", 1) in result.refs

    def test_substring_noise(self, naive):
        # "act" appears inside "G-Actin": the naive LIKE scan drags the
        # protein row in even though nothing references it.
        result = naive.search("we act on the data")
        assert TupleRef("Protein", 1) in result.refs

    def test_confidences_low_band(self, naive):
        result = naive.search("gene grpC and yaaB observed in the assay")
        assert result.tuples
        assert all(0.3 <= t.confidence <= 0.8 for t in result.tuples)

    def test_stopwords_excluded_from_keywords(self, naive):
        result = naive.search("the and of is")
        assert result.keyword_count == 0
        assert result.tuples == []

    def test_keyword_cap(self):
        naive = NaiveSearch(build_figure1_connection(), max_keywords=2)
        result = naive.search("grpC yaaB insL nhaA")
        assert result.keyword_count == 2

    def test_scanned_columns_counted(self, naive):
        result = naive.search("grpC")
        # Gene: GID, Name, Seq, Family; Protein: PID, PName, PType, GID.
        assert result.scanned_columns == 8

    def test_more_hits_higher_confidence(self, naive):
        result = naive.search("grpC JW0013")
        gene1 = next(t for t in result.tuples if t.ref == TupleRef("Gene", 1))
        # Gene#1 is matched by both keywords; any single-keyword match of
        # another row must score lower.
        singles = [t for t in result.tuples if t.ref != TupleRef("Gene", 1)]
        if singles:
            assert gene1.confidence > max(t.confidence for t in singles)

    def test_short_keywords_match_exactly_only(self, naive):
        # "F1" is 2 chars: equality only, so it hits Family values exactly.
        result = naive.search("F1")
        assert all(t.ref.table == "Gene" for t in result.tuples)
        assert len(result.tuples) == 4
