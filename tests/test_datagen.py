"""Unit tests for the synthetic data generator and workload builder."""

import re

import pytest

from repro.datagen.biodb import BioDatabaseSpec, generate_bio_database
from repro.datagen.text import ReferenceStyle, TextSynthesizer
from repro.datagen.vocab import FILLER_WORDS, PROTEIN_TYPES, VocabularyBuilder
from repro.datagen.workload import (
    DATASET_SCALES,
    REFERENCE_BANDS,
    SIZE_GROUPS,
    WorkloadSpec,
    generate_workload,
)
from repro.utils.rng import make_rng
from repro.utils.tokenize import normalize_word


class TestVocabulary:
    @pytest.fixture
    def vocab(self):
        return VocabularyBuilder(make_rng(3, "t"))

    def test_gene_id_format(self, vocab):
        assert re.fullmatch(r"JW\d{4}", vocab.gene_id(14))

    def test_gene_name_format(self, vocab):
        for _ in range(50):
            assert re.fullmatch(r"[a-z]{3}[A-Z]", vocab.gene_name())

    def test_gene_names_unique(self, vocab):
        names = [vocab.gene_name() for _ in range(100)]
        assert len(set(names)) == 100

    def test_gene_names_avoid_filler_collisions(self, vocab):
        filler = {normalize_word(w) for w in FILLER_WORDS}
        for _ in range(200):
            assert normalize_word(vocab.gene_name()) not in filler

    def test_protein_id_format(self, vocab):
        assert re.fullmatch(r"P\d{5}", vocab.protein_id(2))

    def test_protein_names_heterogeneous(self, vocab):
        names = [vocab.protein_name(i) for i in range(9)]
        # Three distinct shape families by construction.
        assert any("-" in n for n in names)
        assert any(n[-1].isdigit() and "-" not in n for n in names)

    def test_records_complete(self, vocab):
        gene = vocab.gene(5)
        assert gene.family in [f"F{i}" for i in range(1, 10)]
        assert set(gene.seq) <= set("ACGT")
        protein = vocab.protein(3, gene.gid)
        assert protein.ptype in PROTEIN_TYPES
        assert protein.gid == gene.gid

    def test_filler_sentence_no_placeholders(self, vocab):
        for _ in range(30):
            sentence = vocab.filler_sentence()
            assert "{w}" not in sentence and "{concept}" not in sentence


class TestTextSynthesizer:
    @pytest.fixture
    def synth(self):
        return TextSynthesizer(VocabularyBuilder(make_rng(5, "v")), make_rng(5, "t"))

    @pytest.fixture
    def records(self):
        vocab = VocabularyBuilder(make_rng(9, "r"))
        genes = [vocab.gene(i) for i in range(4)]
        proteins = [vocab.protein(i, genes[i].gid) for i in range(2)]
        return genes, proteins

    def test_all_keywords_present_in_text(self, synth, records):
        genes, proteins = records
        text, references = synth.compose(genes, proteins, max_bytes=1000)
        for reference in references:
            assert reference.keyword in text

    def test_reference_count_matches(self, synth, records):
        genes, proteins = records
        _, references = synth.compose(genes, proteins, max_bytes=1000)
        assert {r.key for r in references} == {g.gid for g in genes} | {
            p.pid for p in proteins
        }

    def test_byte_budget_respected(self, synth, records):
        genes, proteins = records
        for budget in (80, 200, 500):
            text, _ = synth.compose(genes[:2], [], max_bytes=budget)
            assert len(text.encode()) <= budget

    def test_terse_fallback_for_tight_budget(self, synth, records):
        genes, _ = records
        text, references = synth.compose(genes[:3], [], max_bytes=50)
        assert len(text.encode()) <= 50
        assert len(references) == 3

    def test_impossible_budget_raises(self, synth, records):
        genes, proteins = records
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            synth.compose(genes, proteins, max_bytes=20)

    def test_head_reference_has_concept_style(self, synth, records):
        genes, _ = records
        _, references = synth.compose(genes[:1], [], max_bytes=200)
        assert references[0].style in (
            ReferenceStyle.TYPE1, ReferenceStyle.TYPE2, ReferenceStyle.TYPE3,
        )


class TestBioDatabase:
    @pytest.fixture(scope="class")
    def db(self):
        return generate_bio_database(
            BioDatabaseSpec(genes=60, proteins=35, publications=150, seed=3)
        )

    def test_table_cardinalities(self, db):
        counts = {
            table: db.connection.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
            for table in ("Gene", "Protein", "Publication")
        }
        assert counts == {"Gene": 60, "Protein": 35, "Publication": 150}

    def test_fk_integrity(self, db):
        orphans = db.connection.execute(
            "SELECT COUNT(*) FROM Protein p LEFT JOIN Gene g ON p.GID = g.GID "
            "WHERE g.GID IS NULL"
        ).fetchone()[0]
        assert orphans == 0

    def test_protein_publication_bridge_consistent(self, db):
        # Every bridge row corresponds to a protein reference in the truth.
        bridge = db.connection.execute(
            "SELECT COUNT(*) FROM ProteinPublication pp "
            "LEFT JOIN Protein p ON pp.PID = p.PID WHERE p.PID IS NULL"
        ).fetchone()[0]
        assert bridge == 0

    def test_every_publication_is_an_annotation(self, db):
        assert db.manager.store.count_annotations() == 150
        assert len(db.truths) == 150

    def test_truth_refs_match_attachments(self, db):
        for annotation_id, truth in list(db.truths.items())[:20]:
            focal = db.manager.focal_of(annotation_id)
            assert set(focal) == set(truth.refs)

    def test_abstracts_embed_reference_keywords(self, db):
        for truth in list(db.truths.values())[:20]:
            annotation = db.manager.annotation(truth.annotation_id)
            for reference in truth.references:
                assert reference.keyword in annotation.content

    def test_reference_counts_in_band(self, db):
        for truth in db.truths.values():
            assert 1 <= len(truth.refs) <= 10

    def test_meta_patterns_inferred(self, db):
        assert db.meta.pattern_for("Gene", "GID") is not None
        assert db.meta.pattern_for("Protein", "PID") is not None
        assert db.meta.pattern_for("Protein", "PName") is None  # heterogeneous

    def test_meta_ontology_attached(self, db):
        onto = db.meta.ontology_for("Protein", "PType")
        assert onto is not None and "enzyme" in onto

    def test_searchable_columns(self, db):
        assert ("Gene", "GID") in db.searchable_columns
        assert ("Protein", "PType") in db.searchable_columns

    def test_determinism(self):
        spec = BioDatabaseSpec(genes=20, proteins=10, publications=30, seed=11)
        a = generate_bio_database(spec)
        b = generate_bio_database(spec)
        assert [g.gid for g in a.genes] == [g.gid for g in b.genes]
        assert [g.name for g in a.genes] == [g.name for g in b.genes]
        text_a = [t.pub_key for t in a.truths.values()]
        text_b = [t.pub_key for t in b.truths.values()]
        assert text_a == text_b

    def test_scaled_spec(self):
        spec = BioDatabaseSpec(genes=10, proteins=5, publications=20).scaled(3)
        assert (spec.genes, spec.proteins, spec.publications) == (30, 15, 60)

    def test_community_members(self, db):
        genes, proteins = db.community_members(0)
        assert len(genes) == db.spec.community_size
        assert all(p.gid in {g.gid for g in genes} for p in proteins)


class TestWorkload:
    @pytest.fixture(scope="class")
    def db(self):
        return generate_bio_database(
            BioDatabaseSpec(genes=60, proteins=35, publications=150, seed=3)
        )

    @pytest.fixture(scope="class")
    def workload(self, db):
        return generate_workload(db, WorkloadSpec(seed=21))

    def test_sixty_annotations(self, workload):
        assert len(workload) == 60

    def test_fifteen_per_size_group(self, workload):
        for size in SIZE_GROUPS:
            assert len(workload.group(size)) == 15

    def test_l50_backfills_infeasible_band(self, workload):
        # The 7-10 band cannot fit in 50 bytes; its five annotations are
        # redistributed into the two smaller bands (paper footnote 3).
        assert workload.subset(50, (7, 10)) == []
        assert len(workload.subset(50, (1, 3))) + len(
            workload.subset(50, (4, 6))
        ) == 15

    def test_larger_groups_have_all_bands(self, workload):
        for size in (100, 500, 1000):
            for band in REFERENCE_BANDS:
                assert len(workload.subset(size, band)) == 5

    def test_reference_counts_within_band(self, workload):
        for annotation in workload.annotations:
            low, high = annotation.band
            assert low <= len(annotation.ideal_keywords) <= high

    def test_size_limits_respected(self, workload):
        for annotation in workload.annotations:
            assert len(annotation.text.encode()) <= annotation.size_limit

    def test_keywords_present_in_text(self, workload):
        for annotation in workload.annotations:
            lowered = annotation.text.casefold()
            for keyword in annotation.ideal_keywords:
                assert keyword in lowered

    def test_distortion_keeps_delta_links(self, workload):
        annotation = next(
            a for a in workload.annotations if len(a.ideal_refs) >= 4
        )
        focal = annotation.focal(2)
        assert len(focal) == 2
        assert set(focal) <= set(annotation.ideal_refs)
        missing = annotation.missing(focal)
        assert set(missing) | set(focal) == set(annotation.ideal_refs)

    def test_distortion_deterministic(self, workload):
        annotation = workload.annotations[0]
        assert annotation.focal(1, seed=5) == annotation.focal(1, seed=5)

    def test_distortion_delta_exceeding_links(self, workload):
        annotation = next(
            a for a in workload.annotations if len(a.ideal_refs) <= 3
        )
        assert annotation.focal(10) == annotation.ideal_refs

    def test_invalid_delta(self, workload):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            workload.annotations[0].focal(0)

    def test_dataset_scales_defined(self):
        assert DATASET_SCALES == {"small": 1, "mid": 4, "large": 8}
