"""Unit tests for keyword-query generation (Stage 1, Step 4)."""

import pytest

from repro.config import NebulaConfig
from repro.core.query_generation import generate_queries
from repro.utils.tokenize import normalize_word

from conftest import build_figure1_meta


@pytest.fixture
def meta():
    return build_figure1_meta()


def _keyword_sets(result):
    return [frozenset(normalize_word(k) for k in q.keywords) for q in result.queries]


class TestBasicGeneration:
    def test_type2_query_from_concept_value_pair(self, meta):
        result = generate_queries("the gene JW0014 was active", meta, NebulaConfig())
        assert frozenset({"gene", "jw0014"}) in _keyword_sets(result)

    def test_type1_query_has_three_keywords(self, meta):
        result = generate_queries("gene id JW0018", meta, NebulaConfig())
        assert frozenset({"gene", "id", "jw0018"}) in _keyword_sets(result)

    def test_value_without_concept_ignored(self, meta):
        # A lone identifier with no concept anywhere: no query at all.
        result = generate_queries("JW0014 observed strongly", meta, NebulaConfig())
        assert result.queries == []

    def test_concept_without_value_ignored(self, meta):
        result = generate_queries("the gene was active", meta, NebulaConfig())
        assert result.queries == []

    def test_alice_comment_end_to_end(self, meta):
        text = (
            "From the exp, it seems this gene is correlated to JW0014 of grpC"
        )
        result = generate_queries(text, meta, NebulaConfig())
        sets = _keyword_sets(result)
        assert frozenset({"gene", "jw0014"}) in sets
        # grpC pairs with the same backward "gene" concept.
        assert frozenset({"gene", "grpc"}) in sets

    def test_weights_normalized(self, meta):
        result = generate_queries("gene JW0014 and gene id JW0018", meta, NebulaConfig())
        weights = [q.weight for q in result.queries]
        assert max(weights) == pytest.approx(1.0)
        assert all(0.0 < w <= 1.0 for w in weights)

    def test_duplicate_queries_merged(self, meta):
        # The pair is reachable from both the concept and the value word;
        # only one query must survive.
        result = generate_queries("gene JW0014", meta, NebulaConfig())
        sets = _keyword_sets(result)
        assert len(sets) == len(set(sets))


class TestBackwardSearch:
    def test_list_tail_values_paired_backward(self, meta):
        text = "We examined genes JW0014, then also later on insL and nhaA"
        result = generate_queries(text, meta, NebulaConfig())
        sets = _keyword_sets(result)
        assert frozenset({"genes", "insl"}) in sets or frozenset({"genes", "nhaa"}) in sets

    def test_backward_disabled_by_config(self, meta):
        text = "We examined genes JW0014, filler filler filler filler nhaA"
        with_backward = generate_queries(text, meta, NebulaConfig())
        without = generate_queries(
            text, meta, NebulaConfig(backward_concept_search=False)
        )
        assert len(with_backward.queries) > len(without.queries)

    def test_backward_requires_compatible_concept(self, meta):
        # The closest backward concept is "protein": incompatible with a
        # Gene.GID value, so the value is ignored (no cross-table query).
        text = "protein story filler filler filler filler JW0014"
        result = generate_queries(text, meta, NebulaConfig())
        assert frozenset({"protein", "jw0014"}) not in _keyword_sets(result)


class TestCutoffBehavior:
    def test_tighter_cutoff_fewer_queries(self, meta):
        text = (
            "gene JW0014 and the family F1 group with protein enzyme data "
            "line GRPC observed"
        )
        loose = generate_queries(text, meta, NebulaConfig(epsilon=0.4))
        mid = generate_queries(text, meta, NebulaConfig(epsilon=0.6))
        tight = generate_queries(text, meta, NebulaConfig(epsilon=0.8))
        assert len(loose.queries) >= len(mid.queries) >= len(tight.queries)

    def test_phase_times_recorded(self, meta):
        result = generate_queries("gene JW0014", meta, NebulaConfig())
        assert set(result.phase_times) == {
            "map_generation", "context_adjustment", "query_formation",
        }
        assert result.total_time > 0.0

    def test_max_keywords_respected(self, meta):
        result = generate_queries("gene id JW0018", meta, NebulaConfig())
        assert all(len(q.keywords) <= 3 for q in result.queries)

    def test_empty_annotation(self, meta):
        result = generate_queries("", meta, NebulaConfig())
        assert result.queries == []

    def test_labels_are_informative(self, meta):
        result = generate_queries("gene JW0014", meta, NebulaConfig())
        assert any("type2" in q.label for q in result.queries)
