"""Cross-cutting property-based tests (hypothesis).

These pin down the invariants the paper's algorithms rely on:

* shared execution is *observationally identical* to isolated execution
  for arbitrary keyword-query groups;
* IdentifyRelatedTuples always emits max-normalized, sorted confidences;
* query generation is deterministic and always yields weights in (0, 1]
  with no duplicate keyword sets;
* the focal adjustment never decreases a confidence and is monotone in
  the edge weight.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import NebulaConfig
from repro.core.execution import identify_related_tuples
from repro.core.focal import apply_focal_adjustment
from repro.core.acg import AnnotationsConnectivityGraph
from repro.core.query_generation import generate_queries
from repro.core.shared_execution import SharedExecutor
from repro.meta.lexicon import DEFAULT_LEXICON
from repro.search.engine import KeywordQuery, KeywordSearchEngine
from repro.types import TupleRef
from repro.utils.tokenize import normalize_word

from conftest import build_figure1_connection, build_figure1_meta

SEARCHABLE = [("Gene", "GID"), ("Gene", "Name"), ("Protein", "PID"),
              ("Protein", "PName"), ("Protein", "PType")]

#: Keyword pool mixing concepts, true values, and junk.
_KEYWORD_POOL = (
    "gene", "protein", "family", "id", "name",
    "JW0013", "JW0014", "JW0019", "grpC", "yaaB", "nhaA", "G-Actin",
    "enzyme", "F1", "zzz", "spectacular", "data",
)

_ENGINE = KeywordSearchEngine(
    build_figure1_connection(),
    searchable_columns=SEARCHABLE,
    aliases={"genes": ("Gene", None)},
    lexicon=DEFAULT_LEXICON,
)
_META = build_figure1_meta()


def _queries_from(seed_lists):
    queries = []
    for i, keywords in enumerate(seed_lists):
        if keywords:
            queries.append(
                KeywordQuery(tuple(keywords), weight=1.0 - 0.01 * i, label=f"q{i}")
            )
    return queries


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(
        st.lists(st.sampled_from(_KEYWORD_POOL), min_size=1, max_size=3),
        min_size=1,
        max_size=5,
    )
)
def test_shared_execution_equals_isolated(keyword_lists):
    queries = _queries_from(keyword_lists)
    isolated = {q.describe(): _ENGINE.search(q) for q in queries}
    shared = SharedExecutor(_ENGINE).search_all(queries)
    assert set(isolated) == set(shared)
    for label in isolated:
        iso = {(t.ref, round(t.confidence, 9)) for t in isolated[label].tuples}
        shr = {(t.ref, round(t.confidence, 9)) for t in shared[label].tuples}
        assert iso == shr


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(
        st.lists(st.sampled_from(_KEYWORD_POOL), min_size=1, max_size=3),
        min_size=1,
        max_size=4,
    )
)
def test_identify_related_tuples_normalization(keyword_lists):
    queries = _queries_from(keyword_lists)
    result = identify_related_tuples(queries, _ENGINE)
    confidences = [t.confidence for t in result.tuples]
    if confidences:
        assert max(confidences) == pytest.approx(1.0)
        assert all(0.0 < c <= 1.0 + 1e-12 for c in confidences)
        assert confidences == sorted(confidences, reverse=True)
    # No duplicate tuples after grouping.
    refs = [t.ref for t in result.tuples]
    assert len(refs) == len(set(refs))


_TEXT_FRAGMENTS = (
    "the gene JW0014 was studied",
    "we saw grpC and yaaB",
    "protein G-Actin binds",
    "family F1 members",
    "results were inconclusive overall",
    "id JW0013 follows",
    "an enzyme assay ran",
)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(st.sampled_from(_TEXT_FRAGMENTS), min_size=1, max_size=6),
    st.sampled_from([0.4, 0.6, 0.8]),
)
def test_query_generation_invariants(fragments, epsilon):
    text = ". ".join(fragments) + "."
    config = NebulaConfig(epsilon=epsilon)
    first = generate_queries(text, _META, config)
    second = generate_queries(text, _META, config)
    # Deterministic.
    assert [q.keywords for q in first.queries] == [q.keywords for q in second.queries]
    # Weights normalized into (0, 1], max exactly 1 when non-empty.
    weights = [q.weight for q in first.queries]
    if weights:
        assert max(weights) == pytest.approx(1.0)
        assert all(0.0 < w <= 1.0 + 1e-12 for w in weights)
    # No duplicate keyword sets.
    seen = [frozenset(normalize_word(k) for k in q.keywords) for q in first.queries]
    assert len(seen) == len(set(seen))
    # Keyword count bounded.
    assert all(len(q.keywords) <= config.max_query_keywords for q in first.queries)


@settings(max_examples=60, deadline=None)
@given(
    st.dictionaries(
        st.integers(1, 10).map(lambda i: TupleRef("Gene", i)),
        st.floats(0.01, 1.0, allow_nan=False),
        max_size=10,
    ),
    st.lists(st.integers(1, 10).map(lambda i: TupleRef("Gene", i)), max_size=3),
)
def test_focal_adjustment_never_decreases(confidences, focal):
    acg = AnnotationsConnectivityGraph()
    # A small fixed co-annotation structure.
    for ann, (a, b) in enumerate([(1, 2), (2, 3), (3, 4), (1, 5)], start=1):
        acg.add_attachment(ann, TupleRef("Gene", a))
        acg.add_attachment(ann, TupleRef("Gene", b))
    adjusted = apply_focal_adjustment(confidences, acg, focal)
    assert set(adjusted) == set(confidences)
    for ref, conf in confidences.items():
        assert adjusted[ref] >= conf - 1e-12


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 8), st.integers(1, 8), st.integers(1, 5))
def test_best_path_weight_bounded_and_monotone_in_hops(a, b, hops):
    acg = AnnotationsConnectivityGraph()
    for ann, (x, y) in enumerate([(1, 2), (2, 3), (3, 4), (4, 5), (2, 6)], start=1):
        acg.add_attachment(ann, TupleRef("Gene", x))
        acg.add_attachment(ann, TupleRef("Gene", y))
    source, target = TupleRef("Gene", a), TupleRef("Gene", b)
    shorter = acg.best_path_weight(source, target, hops)
    longer = acg.best_path_weight(source, target, hops + 1)
    assert 0.0 <= shorter <= 1.0
    assert longer >= shorter - 1e-12  # more hops can only help
