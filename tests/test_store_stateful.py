"""Stateful property test of the annotation store.

Drives random sequences of store operations (insert annotation, attach,
attach predicted, promote, detach, range attach) against a model kept in
plain Python, checking after every step that:

* attachment counts agree with the model;
* true edges always carry confidence 1.0, predicted ones < 1.0;
* the focal (true single-row attachments) matches the model;
* a promoted edge never reverts.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.annotations.engine import AnnotationManager
from repro.annotations.store import AttachmentKind
from repro.types import CellRef, TupleRef

from conftest import build_figure1_connection

ROWIDS = list(range(1, 8))  # the seven figure-1 genes


class StoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.manager = AnnotationManager(build_figure1_connection())
        #: model: annotation_id -> {rowid: kind}
        self.model = {}
        #: attachment ids known to be true (must never downgrade)
        self.promoted = set()

    # ------------------------------------------------------------------

    @rule()
    def add_annotation(self):
        annotation = self.manager.add_annotation(f"note {len(self.model)}")
        self.model[annotation.annotation_id] = {}

    @precondition(lambda self: self.model)
    @rule(rowid=st.sampled_from(ROWIDS), data=st.data())
    def attach_true(self, rowid, data):
        annotation_id = data.draw(st.sampled_from(sorted(self.model)))
        self.manager.attach_true(annotation_id, CellRef("Gene", rowid))
        self.model[annotation_id][rowid] = AttachmentKind.TRUE

    @precondition(lambda self: self.model)
    @rule(
        rowid=st.sampled_from(ROWIDS),
        confidence=st.floats(0.1, 0.95),
        data=st.data(),
    )
    def attach_predicted(self, rowid, confidence, data):
        annotation_id = data.draw(st.sampled_from(sorted(self.model)))
        self.manager.attach_predicted(
            annotation_id, CellRef("Gene", rowid), confidence
        )
        # Model: predicted never downgrades an existing true edge.
        current = self.model[annotation_id].get(rowid)
        if current is not AttachmentKind.TRUE:
            self.model[annotation_id][rowid] = AttachmentKind.PREDICTED

    @precondition(lambda self: any(
        AttachmentKind.PREDICTED in edges.values() for edges in self.model.values()
    ))
    @rule(data=st.data())
    def promote_predicted(self, data):
        candidates = [
            (annotation_id, rowid)
            for annotation_id, edges in self.model.items()
            for rowid, kind in edges.items()
            if kind is AttachmentKind.PREDICTED
        ]
        annotation_id, rowid = data.draw(st.sampled_from(candidates))
        for attachment in self.manager.store.attachments_of(annotation_id):
            if attachment.tuple_ref == TupleRef("Gene", rowid):
                self.manager.promote_attachment(attachment.attachment_id)
                self.promoted.add(attachment.attachment_id)
        self.model[annotation_id][rowid] = AttachmentKind.TRUE

    @precondition(lambda self: any(self.model.values()))
    @rule(data=st.data())
    def detach_existing(self, data):
        candidates = [
            (annotation_id, rowid)
            for annotation_id, edges in self.model.items()
            for rowid in edges
        ]
        annotation_id, rowid = data.draw(st.sampled_from(candidates))
        for attachment in self.manager.store.attachments_of(annotation_id):
            if attachment.tuple_ref == TupleRef("Gene", rowid):
                assert self.manager.discard_attachment(attachment.attachment_id)
                self.promoted.discard(attachment.attachment_id)
        del self.model[annotation_id][rowid]

    # ------------------------------------------------------------------

    @invariant()
    def counts_agree(self):
        expected = sum(len(edges) for edges in self.model.values())
        assert self.manager.store.count_attachments() == expected

    @invariant()
    def kinds_and_confidences_agree(self):
        for annotation_id, edges in self.model.items():
            stored = {
                a.tuple_ref.rowid: a
                for a in self.manager.store.attachments_of(annotation_id)
                if a.tuple_ref is not None
            }
            assert set(stored) == set(edges)
            for rowid, kind in edges.items():
                attachment = stored[rowid]
                assert attachment.kind is kind
                if kind is AttachmentKind.TRUE:
                    assert attachment.confidence == 1.0
                else:
                    assert attachment.confidence < 1.0

    @invariant()
    def focal_matches_model(self):
        for annotation_id, edges in self.model.items():
            expected = {
                TupleRef("Gene", rowid)
                for rowid, kind in edges.items()
                if kind is AttachmentKind.TRUE
            }
            assert set(self.manager.focal_of(annotation_id)) == expected


StoreMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)

TestStoreStateful = StoreMachine.TestCase
