"""Unit tests for the annotation tokenizer."""

from repro.utils.tokenize import STOPWORDS, Token, is_stopword, normalize_word, tokenize


class TestTokenize:
    def test_positions_are_sequential(self):
        tokens = tokenize("the gene JW0014 is strong")
        assert [t.position for t in tokens] == [0, 1, 2, 3, 4]

    def test_identifier_survives_intact(self):
        tokens = tokenize("see JW0014, and G-Actin.")
        words = [t.word for t in tokens]
        assert "jw0014" in words
        assert "g-actin" in words

    def test_punctuation_does_not_consume_positions(self):
        tokens = tokenize("alpha, beta; gamma!")
        assert [t.surface for t in tokens] == ["alpha", "beta", "gamma"]
        assert [t.position for t in tokens] == [0, 1, 2]

    def test_offsets_point_into_original_text(self):
        text = "gene JW0014 rocks"
        for token in tokenize(text):
            assert text[token.offset : token.offset + len(token.surface)] == token.surface

    def test_empty_text(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("  \n\t ") == []

    def test_cleaned_preserves_case(self):
        token = tokenize("grpC.")[0]
        assert token.cleaned == "grpC"
        assert token.word == "grpc"

    def test_sentence_final_dot_stripped_by_cleaned(self):
        tokens = tokenize("We saw yaaB.")
        assert tokens[-1].cleaned == "yaaB"

    def test_hyphenated_token_kept(self):
        (token,) = tokenize("G-Actin")
        assert token.cleaned == "G-Actin"

    def test_numbers_tokenize(self):
        tokens = tokenize("length 1130 bp")
        assert tokens[1].word == "1130"


class TestNormalizeWord:
    def test_casefold(self):
        assert normalize_word("GrpC") == "grpc"

    def test_strips_trailing_dot(self):
        assert normalize_word("Gene.") == "gene"

    def test_keeps_internal_hyphen(self):
        assert normalize_word("G-Actin") == "g-actin"

    def test_strips_leading_hyphen(self):
        assert normalize_word("-gene") == "gene"


class TestStopwords:
    def test_common_words_are_stopwords(self):
        for word in ("the", "and", "of", "is"):
            assert is_stopword(word)

    def test_domain_words_are_not(self):
        for word in ("gene", "protein", "jw0014"):
            assert not is_stopword(word)

    def test_stopword_set_is_lowercase(self):
        assert all(w == w.casefold() for w in STOPWORDS)
