"""Unit tests for ontologies and column samples."""

import random

from hypothesis import given, strategies as st

from repro.meta.ontology import Ontology
from repro.meta.sampling import ColumnSample, _shape_similarity


class TestOntology:
    def test_direct_membership(self):
        onto = Ontology("t", ["enzyme", "kinase"])
        assert onto.contains("enzyme")
        assert onto.contains("ENZYME")
        assert not onto.contains("swimming")

    def test_transitive_membership(self):
        onto = Ontology(
            "t",
            ["transport"],
            parents={"ion transport": "transport", "proton transport": "ion transport"},
        )
        assert onto.contains("proton transport")
        assert not onto.contains("proton transport", transitive=False)

    def test_cycle_in_parents_terminates(self):
        onto = Ontology("t", ["x"], parents={"a": "b", "b": "a"})
        assert not onto.contains("a")

    def test_ancestors(self):
        onto = Ontology("t", ["top"], parents={"mid": "top", "leaf": "mid"})
        assert onto.ancestors("leaf") == frozenset({"mid", "top"})

    def test_dunder_contains_and_len(self):
        onto = Ontology("t", ["a", "b"])
        assert "a" in onto
        assert len(onto) == 2


class TestColumnSample:
    def test_exact_membership(self):
        sample = ColumnSample("Gene", "Name", ("grpC", "yaaB"))
        assert sample.contains("GRPC")
        assert sample.match_score("grpC") == 1.0

    def test_shape_match_is_damped(self):
        sample = ColumnSample("Gene", "Name", ("grpC", "yaaB", "insL"))
        score = sample.match_score("nhaA")  # same shape, not in sample
        assert 0.0 < score <= 0.7

    def test_dissimilar_word_scores_low(self):
        sample = ColumnSample("Gene", "GID", ("JW0013", "JW0014"))
        long_word = sample.match_score("supercalifragilistic")
        similar = sample.match_score("JW9999")
        assert long_word < similar

    def test_empty_sample(self):
        assert ColumnSample("t", "c", ()).match_score("x") == 0.0

    def test_draw_is_deterministic(self):
        population = [f"v{i}" for i in range(200)]
        a = ColumnSample.draw("t", "c", population, size=10, rng=random.Random(1))
        b = ColumnSample.draw("t", "c", population, size=10, rng=random.Random(1))
        assert a.values == b.values
        assert len(a) == 10

    def test_draw_small_population_keeps_all(self):
        sample = ColumnSample.draw("t", "c", ["a", "b"], size=10)
        assert len(sample) == 2


@given(st.text(min_size=1, max_size=15), st.text(min_size=1, max_size=15))
def test_shape_similarity_bounded_and_symmetric(a, b):
    score = _shape_similarity(a, b)
    assert 0.0 <= score <= 1.0
    assert score == _shape_similarity(b, a)


@given(st.text(min_size=1, max_size=15))
def test_shape_similarity_self_is_one(value):
    assert _shape_similarity(value, value) == 1.0
