"""Tests for the Nebula engine facade (Stages 0-3 wired together)."""

import pytest

from repro import Nebula, NebulaConfig, generate_bio_database
from repro.core.verification import Decision
from repro.datagen.biodb import BioDatabaseSpec
from repro.types import TupleRef


@pytest.fixture(scope="module")
def db():
    return generate_bio_database(
        BioDatabaseSpec(genes=60, proteins=35, publications=250, seed=13)
    )


@pytest.fixture()
def nebula(db):
    return Nebula(db.connection, db.meta, NebulaConfig(epsilon=0.6), aliases=db.aliases)


class TestAnalyze:
    def test_discovers_referenced_gene(self, db, nebula):
        target = db.genes[5]
        focal = [db.resolve("gene", db.genes[4].gid)]
        report = nebula.analyze(
            f"We looked into gene {target.gid} during the assay.", focal=focal
        )
        assert db.resolve("gene", target.gid) in report.identified.refs
        assert report.mode == "full"

    def test_spreading_mode_restricts_scope(self, db, nebula):
        # Focal in community 0; reference in the same community.
        genes, _ = db.community_members(0)
        focal = [db.resolve("gene", genes[0].gid)]
        report = nebula.analyze(
            f"Results involve gene {genes[1].gid} here.",
            focal=focal,
            use_spreading=True,
            radius=2,
        )
        assert report.mode == "spreading"
        assert report.scope_size is not None
        assert db.resolve("gene", genes[1].gid) in report.identified.refs

    def test_spreading_requires_focal(self, db, nebula):
        report = nebula.analyze("gene JW0001 mentioned.", focal=[], use_spreading=True)
        assert report.mode == "full"

    def test_spreading_cleans_up_minidb(self, db, nebula):
        genes, _ = db.community_members(0)
        nebula.analyze(
            f"gene {genes[1].gid}.",
            focal=[db.resolve("gene", genes[0].gid)],
            use_spreading=True,
        )
        leftovers = db.connection.execute(
            "SELECT name FROM sqlite_temp_master WHERE name LIKE '_minidb_%'"
        ).fetchall()
        assert leftovers == []

    def test_analyze_persists_nothing(self, db, nebula):
        before = db.manager.store.count_attachments()
        annotations_before = db.manager.store.count_annotations()
        nebula.analyze(f"gene {db.genes[0].gid}.", focal=[])
        assert db.manager.store.count_attachments() == before
        assert db.manager.store.count_annotations() == annotations_before

    def test_shared_execution_equivalent(self, db, nebula):
        genes, _ = db.community_members(1)
        text = f"We examined genes {genes[0].gid}, then {genes[1].gid} and {genes[2].name}."
        isolated = nebula.analyze(text, shared=False)
        shared = nebula.analyze(text, shared=True)
        assert isolated.identified.refs == shared.identified.refs


class TestInsertAnnotation:
    def test_full_pipeline(self, db, nebula):
        genes, _ = db.community_members(2)
        focal_ref = db.resolve("gene", genes[0].gid)
        target_ref = db.resolve("gene", genes[1].gid)
        report = nebula.insert_annotation(
            f"This concerns gene {genes[1].gid} in depth.",
            attach_to=[focal_ref],
            author="alice",
        )
        assert report.annotation_id is not None
        assert nebula.manager.focal_of(report.annotation_id)[0] == focal_ref
        accepted = [t.ref for t in report.tasks if t.decision.is_accepted]
        assert target_ref in accepted
        # The accepted attachment is now a true edge.
        assert target_ref in nebula.manager.focal_of(report.annotation_id)

    def test_pending_task_lifecycle_via_command(self, db, nebula):
        genes, _ = db.community_members(3)
        # A weaker reference (by name, through a filler-heavy text) may
        # land in the pending band; force one by inserting with tight
        # bounds via config.
        tight = Nebula(
            db.connection,
            db.meta,
            NebulaConfig(epsilon=0.6, beta_lower=0.01, beta_upper=0.999),
            aliases=db.aliases,
        )
        # Two references: the first forms a direct Type-2 pair (normalizes
        # to 1.0 -> auto-accept), the second is a backward-paired bare value
        # whose weight normalizes below beta_upper -> pending.
        report = tight.insert_annotation(
            f"We examined genes {genes[2].gid}, and later saw {genes[3].gid} too.",
            attach_to=[db.resolve("gene", genes[0].gid)],
        )
        pending = [t for t in report.tasks if t.decision is Decision.PENDING]
        assert pending
        result = tight.execute_command(f"VERIFY ATTACHMENT {pending[0].task_id}")
        assert "verified" in result.message
        assert pending[0].ref in tight.manager.focal_of(report.annotation_id)

    def test_stability_tracker_advances(self, db):
        nebula = Nebula(
            db.connection,
            db.meta,
            NebulaConfig(epsilon=0.6, batch_size=2),
            aliases=db.aliases,
        )
        genes, _ = db.community_members(4)
        for i in range(2):
            nebula.insert_annotation(
                f"gene {genes[i].gid} study.",
                attach_to=[db.resolve("gene", genes[i].gid)],
            )
        assert len(nebula.stability.history) == 1

    def test_report_carries_generation_and_timing(self, db, nebula):
        genes, _ = db.community_members(5)
        report = nebula.insert_annotation(
            f"gene {genes[0].gid} noted.", attach_to=[]
        )
        assert report.query_count >= 1
        assert report.elapsed > 0.0
        assert set(report.generation.phase_times) == {
            "map_generation", "context_adjustment", "query_formation",
        }


class TestEngineSetup:
    def test_searchable_columns_from_concepts(self, db, nebula):
        indexed = nebula.engine.index.indexed_columns
        assert ("gene", "gid") in indexed
        assert ("protein", "ptype") in indexed

    def test_acg_built_from_existing_annotations(self, db, nebula):
        assert nebula.acg.node_count > 0
        assert nebula.acg.edge_count > 0

    def test_acg_skippable(self, db):
        bare = Nebula(db.connection, db.meta, build_acg=False)
        assert bare.acg.node_count == 0
