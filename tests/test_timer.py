"""Unit tests for the Stopwatch / PhaseTimer helpers (observability PR).

The two misuse hazards fixed here: ``stop()`` on a never-started watch
used to subtract a stale ``_started_at`` into ``elapsed``, and re-entrant
``phase()`` blocks on the same name used to double-count the overlapping
interval.  A fake clock pins the arithmetic exactly.
"""

import pytest

import repro.utils.timer as timer_module
from repro.observability import RingBufferExporter, Tracer
from repro.utils.timer import PhaseTimer, Stopwatch


class FakeClock:
    """Deterministic stand-in for time.perf_counter."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock(monkeypatch):
    fake = FakeClock()
    monkeypatch.setattr(timer_module.time, "perf_counter", fake)
    return fake


class TestStopwatch:
    def test_accumulates_across_intervals(self, clock):
        watch = Stopwatch()
        watch.start()
        clock.advance(1.0)
        assert watch.stop() == 1.0
        watch.start()
        clock.advance(0.5)
        assert watch.stop() == 1.5
        assert watch.elapsed == 1.5

    def test_stop_without_start_is_a_noop(self, clock):
        watch = Stopwatch()
        clock.advance(100.0)  # a stale clock must not leak into elapsed
        assert watch.stop() == 0.0
        assert watch.elapsed == 0.0
        assert not watch.running

    def test_double_stop_does_not_double_count(self, clock):
        watch = Stopwatch()
        watch.start()
        clock.advance(2.0)
        watch.stop()
        clock.advance(3.0)
        assert watch.stop() == 2.0  # second stop accounts nothing

    def test_reentrant_start_counts_outermost_interval_once(self, clock):
        watch = Stopwatch()
        watch.start()
        clock.advance(1.0)
        watch.start()  # nested entry on the same watch
        clock.advance(1.0)
        assert watch.stop() == 0.0  # still running (outer scope open)
        assert watch.running
        clock.advance(1.0)
        assert watch.stop() == 3.0  # exactly the outermost interval
        assert not watch.running

    def test_reset_clears_depth_and_elapsed(self, clock):
        watch = Stopwatch()
        watch.start()
        clock.advance(1.0)
        watch.reset()
        assert watch.elapsed == 0.0
        assert not watch.running
        clock.advance(5.0)
        assert watch.stop() == 0.0  # reset forgot the open interval


class TestPhaseTimer:
    def test_phases_accumulate_independently(self, clock):
        timer = PhaseTimer()
        with timer.phase("maps"):
            clock.advance(1.0)
        with timer.phase("queries"):
            clock.advance(0.25)
        with timer.phase("maps"):
            clock.advance(0.5)
        assert timer.totals() == {"maps": 1.5, "queries": 0.25}
        assert timer.total() == 1.75

    def test_nested_same_phase_counts_once(self, clock):
        """Regression: a re-entrant phase() on the same name used to
        count the inner interval twice."""
        timer = PhaseTimer()
        with timer.phase("maps"):
            clock.advance(1.0)
            with timer.phase("maps"):
                clock.advance(1.0)
            clock.advance(1.0)
        assert timer.totals()["maps"] == 3.0

    def test_exception_still_stops_the_watch(self, clock):
        timer = PhaseTimer()
        with pytest.raises(RuntimeError):
            with timer.phase("maps"):
                clock.advance(1.0)
                raise RuntimeError("boom")
        assert timer.totals()["maps"] == 1.0

    def test_tracer_adapter_opens_spans(self, clock):
        ring = RingBufferExporter()
        tracer = Tracer([ring])
        timer = PhaseTimer(
            tracer=tracer, span_names={"maps": "stage1.maps"}, span_prefix="x."
        )
        with tracer.span("root"):
            with timer.phase("maps"):
                clock.advance(1.0)
            with timer.phase("other"):
                clock.advance(1.0)
        (trace,) = ring.last(1)
        names = [child["name"] for child in trace["children"]]
        assert names == ["stage1.maps", "x.other"]  # mapped, then prefixed
        assert timer.totals() == {"maps": 1.0, "other": 1.0}

    def test_without_tracer_no_spans_are_involved(self, clock):
        timer = PhaseTimer()
        with timer.phase("maps"):
            clock.advance(1.0)
        assert timer.total() == 1.0
