"""Unit tests for the nebula-lint rules against fixture snippets."""

import json

import pytest

from repro.analysis import analyze_paths
from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.cli import main as lint_main
from repro.analysis.engine import AnalysisError
from repro.analysis.resolve import Safety, build_env, resolve_str


def lint(tmp_path, source, name="snippet.py", rules=None):
    path = tmp_path / name
    path.write_text(source)
    return analyze_paths([str(path)], rules=rules)


def rule_ids(findings):
    return [f.rule_id for f in findings]


# ----------------------------------------------------------------------
# NBL001 — SQL safety
# ----------------------------------------------------------------------


class TestSqlSafety:
    def test_fstring_interpolation_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(conn, name):\n"
            "    conn.execute(f\"SELECT * FROM t WHERE name = '{name}'\")\n",
        )
        assert rule_ids(findings) == ["NBL001"]
        assert findings[0].line == 2
        assert "name" in findings[0].message

    def test_percent_formatting_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(conn, v):\n"
            '    conn.execute("SELECT * FROM t WHERE x = %s" % v)\n',
        )
        assert rule_ids(findings) == ["NBL001"]

    def test_concatenation_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(conn, tail):\n"
            '    conn.execute("SELECT * FROM t WHERE " + tail)\n',
        )
        assert rule_ids(findings) == ["NBL001"]

    def test_placeholders_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(conn, name):\n"
            '    conn.execute("SELECT * FROM t WHERE name = ?", (name,))\n',
        )
        assert findings == []

    def test_triple_quoted_fstring_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(conn, name):\n"
            '    conn.execute(f"""\n'
            "        SELECT *\n"
            "        FROM t\n"
            "        WHERE name = '{name}'\n"
            '    """)\n',
        )
        assert rule_ids(findings) == ["NBL001"]

    def test_aliased_cursor_method_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(cur, name):\n"
            "    run = cur.execute\n"
            "    run(f\"SELECT * FROM t WHERE name = '{name}'\")\n",
        )
        assert rule_ids(findings) == ["NBL001"]

    def test_quote_identifier_interpolation_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            "from repro.utils.sql import quote_identifier\n"
            "def f(conn, table):\n"
            '    conn.execute(f"SELECT rowid FROM {quote_identifier(table)}")\n',
        )
        assert findings == []

    def test_constant_propagated_through_locals_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(conn, flag):\n"
            '    sql = "SELECT * FROM t WHERE 1=1"\n'
            "    if flag:\n"
            '        sql += " AND active = 1"\n'
            '    conn.execute(sql + " ORDER BY rowid")\n',
        )
        assert findings == []

    def test_unsafe_accumulation_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(conn, tail):\n"
            '    sql = "SELECT * FROM t"\n'
            '    sql += f" WHERE {tail}"\n'
            "    conn.execute(sql)\n",
        )
        assert rule_ids(findings) == ["NBL001"]

    def test_safe_clause_list_join_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(conn, rowid, column):\n"
            '    clauses = ["target_table = ?"]\n'
            "    if rowid is not None:\n"
            '        clauses.append("target_rowid = ?")\n'
            "    conn.execute(\n"
            "        \"SELECT * FROM t WHERE \" + \" AND \".join(clauses),\n"
            "        [rowid],\n"
            "    )\n",
        )
        assert findings == []

    def test_unsafe_clause_list_join_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(conn, predicate):\n"
            '    clauses = ["x = ?"]\n'
            "    clauses.append(predicate)\n"
            "    conn.execute(\"SELECT * FROM t WHERE \" + \" AND \".join(clauses))\n",
        )
        assert rule_ids(findings) == ["NBL001"]

    def test_opaque_variable_trusted(self, tmp_path):
        # Cross-function SQL flow is judged at the construction site, not
        # the execute site: a bare opaque name is not flagged.
        findings = lint(
            tmp_path,
            "def f(conn, sql, params):\n"
            "    conn.execute(sql, params)\n",
        )
        assert findings == []

    def test_executescript_and_executemany_covered(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(conn, t):\n"
            '    conn.executescript(f"DROP TABLE {t}")\n'
            '    conn.executemany(f"INSERT INTO {t} VALUES (?)", [(1,)])\n',
        )
        assert rule_ids(findings) == ["NBL001", "NBL001"]

    def test_inline_ignore_suppresses(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(conn, w):\n"
            '    conn.execute(f"SELECT 1 WHERE {w}")  # nebula-lint: ignore[NBL001]\n',
        )
        assert findings == []

    def test_inline_ignore_on_continuation_line(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(conn, w):\n"
            "    conn.execute(\n"
            '        f"SELECT 1 WHERE {w}"  # nebula-lint: ignore[NBL001]\n'
            "    )\n",
        )
        assert findings == []

    def test_inline_ignore_wrong_rule_does_not_suppress(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(conn, w):\n"
            '    conn.execute(f"SELECT 1 WHERE {w}")  # nebula-lint: ignore[NBL006]\n',
        )
        assert rule_ids(findings) == ["NBL001"]


# ----------------------------------------------------------------------
# NBL002 — SAVEPOINT pairing
# ----------------------------------------------------------------------


class TestSavepointPairing:
    def test_unreleased_savepoint_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(conn):\n"
            '    conn.execute("SAVEPOINT sp1")\n'
            '    conn.execute("INSERT INTO t VALUES (1)")\n',
        )
        assert rule_ids(findings) == ["NBL002"]

    def test_released_savepoint_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(conn):\n"
            '    conn.execute("SAVEPOINT sp1")\n'
            '    conn.execute("RELEASE SAVEPOINT sp1")\n',
        )
        assert findings == []

    def test_rollback_to_counts_as_closure(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(conn):\n"
            '    conn.execute("SAVEPOINT sp1")\n'
            '    conn.execute("ROLLBACK TO sp1")\n',
        )
        assert findings == []

    def test_savepoint_name_from_constant(self, tmp_path):
        # The name flows through a module constant on both sides.
        findings = lint(
            tmp_path,
            'NAME = "sp_bulk"\n'
            "def f(conn):\n"
            '    conn.execute(f"SAVEPOINT {NAME}")\n'
            '    conn.execute(f"RELEASE SAVEPOINT {NAME}")\n',
        )
        assert findings == []

    def test_mismatched_names_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(conn):\n"
            '    conn.execute("SAVEPOINT sp_a")\n'
            '    conn.execute("RELEASE SAVEPOINT sp_b")\n',
        )
        assert rule_ids(findings) == ["NBL002"]


# ----------------------------------------------------------------------
# NBL003 / NBL004 — paper invariants
# ----------------------------------------------------------------------


class TestPaperInvariants:
    def test_beta_ordering_violation_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "class NebulaConfig:\n"
            "    beta1: float = 0.30\n"
            "    beta2: float = 0.50\n"
            "    beta3: float = 0.15\n",
        )
        assert rule_ids(findings) == ["NBL003"]
        assert findings[0].line == 2

    def test_valid_defaults_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            "class NebulaConfig:\n"
            "    beta1: float = 0.50\n"
            "    beta2: float = 0.30\n"
            "    beta3: float = 0.15\n"
            "    epsilon: float = 0.05\n",
        )
        assert findings == []

    def test_construction_site_override_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "class NebulaConfig:\n"
            "    beta1: float = 0.50\n"
            "    beta2: float = 0.30\n"
            "    beta3: float = 0.15\n"
            "def f():\n"
            "    return NebulaConfig(beta2=0.9)\n",
        )
        assert rule_ids(findings) == ["NBL003"]
        assert findings[0].line == 6

    def test_epsilon_out_of_range_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "class NebulaConfig:\n"
            "    epsilon: float = 1.5\n",
        )
        assert rule_ids(findings) == ["NBL003"]

    def test_true_edge_weight_pinned(self, tmp_path):
        findings = lint(tmp_path, "TRUE_EDGE_WEIGHT = 0.9\n")
        assert rule_ids(findings) == ["NBL004"]

    def test_true_edge_weight_exact_clean(self, tmp_path):
        findings = lint(tmp_path, "TRUE_EDGE_WEIGHT = 1.0\n")
        assert findings == []

    def test_predicted_confidence_bounds(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(m, ann, ref):\n"
            "    m.attach_predicted(ann, ref, confidence=1.0)\n"
            "    m.attach_predicted(ann, ref, confidence=0.7)\n",
        )
        assert rule_ids(findings) == ["NBL004"]
        assert findings[0].line == 2


# ----------------------------------------------------------------------
# NBL005 — span taxonomy
# ----------------------------------------------------------------------


class TestSpanRegistry:
    def test_unknown_span_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(tracer):\n"
            '    with tracer.span("stage9.mystery"):\n'
            "        pass\n",
        )
        assert rule_ids(findings) == ["NBL005"]

    def test_canonical_span_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(tracer):\n"
            '    with tracer.span("analyze"):\n'
            "        pass\n",
        )
        assert findings == []

    def test_self_tracer_receiver_matched(self, tmp_path):
        findings = lint(
            tmp_path,
            "class C:\n"
            "    def f(self):\n"
            '        with self._tracer.span("nope.unknown"):\n'
            "            pass\n",
        )
        assert rule_ids(findings) == ["NBL005"]

    def test_span_names_mapping_values_checked(self, tmp_path):
        findings = lint(
            tmp_path,
            'SPAN_NAMES = {"maps": "stage1.maps", "rogue": "stageX.rogue"}\n',
        )
        assert rule_ids(findings) == ["NBL005"]

    def test_non_tracer_receiver_not_matched(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(bridge):\n"
            '    bridge.span("whatever")\n',
        )
        assert findings == []

    @pytest.mark.parametrize(
        "name", ["service.request", "service.batch_flush", "service.recover"]
    )
    def test_service_spans_are_canonical(self, tmp_path, name):
        findings = lint(
            tmp_path,
            "def f(tracer):\n"
            f'    with tracer.span("{name}"):\n'
            "        pass\n",
        )
        assert findings == []

    def test_misspelled_service_span_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(tracer):\n"
            '    with tracer.span("service.flush_batch"):\n'
            "        pass\n",
        )
        assert rule_ids(findings) == ["NBL005"]


# ----------------------------------------------------------------------
# NBL006 — resource hygiene
# ----------------------------------------------------------------------


class TestResourceHygiene:
    def test_leaked_connection_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "import sqlite3\n"
            "def f():\n"
            '    conn = sqlite3.connect("x.db")\n'
            '    conn.execute("SELECT 1")\n',
            rules=["NBL006"],
        )
        assert rule_ids(findings) == ["NBL006"]

    def test_closed_connection_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            "import sqlite3\n"
            "def f():\n"
            '    conn = sqlite3.connect("x.db")\n'
            "    try:\n"
            '        conn.execute("SELECT 1")\n'
            "    finally:\n"
            "        conn.close()\n",
            rules=["NBL006"],
        )
        assert findings == []

    def test_with_closing_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            "import sqlite3\n"
            "from contextlib import closing\n"
            "def f():\n"
            '    conn = sqlite3.connect("x.db")\n'
            "    with closing(conn):\n"
            '        conn.execute("SELECT 1")\n',
            rules=["NBL006"],
        )
        assert findings == []

    def test_returned_connection_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            "import sqlite3\n"
            "def f():\n"
            '    conn = sqlite3.connect("x.db")\n'
            "    return conn\n",
            rules=["NBL006"],
        )
        assert findings == []

    def test_test_files_exempt(self, tmp_path):
        findings = lint(
            tmp_path,
            "import sqlite3\n"
            "def f():\n"
            '    conn = sqlite3.connect("x.db")\n'
            '    conn.execute("SELECT 1")\n',
            name="test_fixture.py",
        )
        assert findings == []


class TestResourceHygieneStorageLayer:
    def test_compat_connect_leak_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "from repro.storage import compat\n"
            "def f():\n"
            '    conn = compat.connect("x.db")\n'
            '    conn.execute("SELECT 1")\n',
            rules=["NBL006"],
        )
        assert rule_ids(findings) == ["NBL006"]

    def test_unreleased_pool_lease_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(pool):\n"
            "    lease = pool.acquire()\n"
            '    lease.connection.execute("SELECT 1")\n',
            rules=["NBL006"],
        )
        assert rule_ids(findings) == ["NBL006"]
        assert findings[0].details["kind"] == "lease"

    def test_released_pool_lease_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(pool):\n"
            "    lease = pool.acquire()\n"
            "    try:\n"
            '        lease.connection.execute("SELECT 1")\n'
            "    finally:\n"
            "        lease.release()\n",
            rules=["NBL006"],
        )
        assert findings == []

    def test_backend_reader_leak_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(backend):\n"
            "    reader = backend.open_reader()\n"
            '    reader.execute("SELECT 1")\n',
            rules=["NBL006"],
        )
        assert rule_ids(findings) == ["NBL006"]
        assert findings[0].details["kind"] == "reader"

    def test_lock_acquire_not_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(lock):\n"
            "    held = lock.acquire()\n"
            "    return None\n",
            rules=["NBL006"],
        )
        assert findings == []

    def test_unreleased_service_reader_handle_flagged(self, tmp_path):
        """The service's reader-ladder helpers count as openers on any
        receiver — the name alone marks a held read handle."""
        findings = lint(
            tmp_path,
            "class S:\n"
            "    def read(self):\n"
            "        handle = self._acquire_reader()\n"
            '        return handle.connection.execute("SELECT 1").fetchone()\n',
            rules=["NBL006"],
        )
        assert rule_ids(findings) == ["NBL006"]
        assert findings[0].details["kind"] == "reader"

    def test_service_reader_released_in_finally_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            "class S:\n"
            "    def read(self, fn):\n"
            "        handle = self._acquire_reader()\n"
            "        try:\n"
            "            return fn(handle.connection)\n"
            "        finally:\n"
            "            handle.release()\n",
            rules=["NBL006"],
        )
        assert findings == []

    def test_public_acquire_reader_spelling_recognized(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(service):\n"
            "    handle = service.acquire_reader()\n"
            '    handle.connection.execute("SELECT 1")\n',
            rules=["NBL006"],
        )
        assert rule_ids(findings) == ["NBL006"]

    def test_attribute_handoff_escapes_the_resource(self, tmp_path):
        """Handing ``lease.connection`` / a bound ``lease.release`` to
        another component transfers cleanup ownership."""
        findings = lint(
            tmp_path,
            "def f(pool, wrap):\n"
            "    lease = pool.acquire()\n"
            "    return wrap(lease.connection, lease.release)\n",
            rules=["NBL006"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# NBL007 — driver-import isolation
# ----------------------------------------------------------------------


class TestDriverIsolation:
    def test_plain_import_flagged(self, tmp_path):
        findings = lint(tmp_path, "import sqlite3\n", rules=["NBL007"])
        assert rule_ids(findings) == ["NBL007"]
        assert "repro/storage" in findings[0].message

    def test_from_import_flagged(self, tmp_path):
        findings = lint(
            tmp_path, "from sqlite3 import Connection\n", rules=["NBL007"]
        )
        assert rule_ids(findings) == ["NBL007"]

    def test_storage_package_exempt(self, tmp_path):
        package = tmp_path / "repro" / "storage"
        package.mkdir(parents=True)
        path = package / "compat.py"
        path.write_text("import sqlite3\n")
        assert analyze_paths([str(path)], rules=["NBL007"]) == []

    def test_tests_exempt(self, tmp_path):
        findings = lint(
            tmp_path, "import sqlite3\n", name="test_fixture.py", rules=["NBL007"]
        )
        assert findings == []

    def test_compat_import_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            "from repro.storage.compat import Connection, connect\n",
            rules=["NBL007"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# NBL008 — metric naming
# ----------------------------------------------------------------------


class TestMetricNaming:
    def test_missing_prefix_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            'def f(metrics):\n    metrics.counter("queue_depth_total").inc()\n',
            rules=["NBL008"],
        )
        assert rule_ids(findings) == ["NBL008"]
        assert "nebula_" in findings[0].message
        assert findings[0].details["metric"] == "queue_depth_total"

    def test_counter_without_total_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            'def f(metrics):\n    metrics.counter("nebula_requests").inc()\n',
            rules=["NBL008"],
        )
        assert rule_ids(findings) == ["NBL008"]
        assert "_total" in findings[0].message

    def test_gauge_ending_total_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            'def f(registry):\n    registry.gauge("nebula_depth_total").set(1)\n',
            rules=["NBL008"],
        )
        assert rule_ids(findings) == ["NBL008"]
        assert "counters only" in findings[0].message

    @pytest.mark.parametrize("suffix", ["_bucket", "_sum", "_count"])
    def test_reserved_suffixes_flagged(self, tmp_path, suffix):
        findings = lint(
            tmp_path,
            "def f(metrics):\n"
            f'    metrics.gauge("nebula_queue{suffix}").set(1)\n',
            rules=["NBL008"],
        )
        assert rule_ids(findings) == ["NBL008"]
        assert "reserves" in findings[0].message

    def test_time_histogram_without_seconds_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(metrics):\n"
            '    metrics.histogram("nebula_flush", TIME_BUCKETS).observe(0.1)\n',
            rules=["NBL008"],
        )
        assert rule_ids(findings) == ["NBL008"]
        assert "_seconds" in findings[0].message

    def test_default_buckets_histogram_needs_seconds(self, tmp_path):
        # The registry's default buckets are TIME_BUCKETS.
        findings = lint(
            tmp_path,
            'def f(metrics):\n    metrics.histogram("nebula_flush").observe(1)\n',
            rules=["NBL008"],
        )
        assert rule_ids(findings) == ["NBL008"]

    def test_count_histogram_any_suffix_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(metrics):\n"
            '    metrics.histogram("nebula_batch_size", COUNT_BUCKETS)\n',
            rules=["NBL008"],
        )
        assert findings == []

    def test_conforming_names_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(self, registry):\n"
            '    self.metrics.counter("nebula_requests_total").inc()\n'
            '    registry.gauge("nebula_queue_depth").set(0)\n'
            '    get_metrics().counter("nebula_retries_total").inc()\n'
            '    self.metrics.histogram("nebula_flush_seconds", TIME_BUCKETS)\n',
            rules=["NBL008"],
        )
        assert findings == []

    def test_non_registry_receiver_not_matched(self, tmp_path):
        findings = lint(
            tmp_path,
            'def f(stats):\n    stats.counter("whatever").inc()\n',
            rules=["NBL008"],
        )
        assert findings == []

    def test_dynamic_name_not_matched(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(metrics, name):\n    metrics.gauge(name).set(1)\n",
            rules=["NBL008"],
        )
        assert findings == []

    def test_inline_ignore_suppresses(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(metrics):\n"
            '    metrics.counter("legacy_name")  # nebula-lint: ignore[NBL008]\n',
            rules=["NBL008"],
        )
        assert findings == []

    def test_tests_exempt(self, tmp_path):
        findings = lint(
            tmp_path,
            'def f(metrics):\n    metrics.counter("anything")\n',
            name="test_fixture.py",
            rules=["NBL008"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# NBL013 — versioned-table write discipline
# ----------------------------------------------------------------------


class TestVersionedWrites:
    def test_update_head_table_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(conn, aid):\n"
            '    conn.execute("UPDATE _nebula_annotations SET content = ? '
            'WHERE annotation_id = ?", ("x", aid))\n',
            rules=["NBL013"],
        )
        assert rule_ids(findings) == ["NBL013"]
        assert findings[0].details["table"] == "_nebula_annotations"

    def test_delete_head_table_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(conn, aid):\n"
            '    conn.execute("DELETE FROM _nebula_attachments '
            'WHERE attachment_id = ?", (aid,))\n',
            rules=["NBL013"],
        )
        assert rule_ids(findings) == ["NBL013"]
        assert findings[0].details["table"] == "_nebula_attachments"

    def test_replace_into_flagged(self, tmp_path):
        # REPLACE is an implicit DELETE: it drops the old row without a
        # tombstone in the history log.
        findings = lint(
            tmp_path,
            "def f(conn, row):\n"
            '    conn.execute("INSERT OR REPLACE INTO _nebula_annotations '
            'VALUES (?, ?, ?, ?)", row)\n',
            rules=["NBL013"],
        )
        assert rule_ids(findings) == ["NBL013"]

    def test_composed_constant_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            '_SQL = "DELETE FROM " + "_nebula_annotations" + '
            '" WHERE annotation_id = ?"\n'
            "def f(conn, aid):\n"
            "    conn.execute(_SQL, (aid,))\n",
            rules=["NBL013"],
        )
        assert rule_ids(findings) == ["NBL013"]

    def test_versioning_package_exempt(self, tmp_path):
        target = tmp_path / "repro" / "versioning"
        target.mkdir(parents=True)
        path = target / "writer.py"
        path.write_text(
            "def f(conn, aid):\n"
            '    conn.execute("DELETE FROM _nebula_attachments '
            'WHERE attachment_id = ?", (aid,))\n'
        )
        assert analyze_paths([str(path)], rules=["NBL013"]) == []

    def test_tests_exempt(self, tmp_path):
        findings = lint(
            tmp_path,
            "def corrupt_head(conn):\n"
            '    conn.execute("DELETE FROM _nebula_annotations")\n',
            name="test_recovery.py",
            rules=["NBL013"],
        )
        assert findings == []

    def test_reads_and_plain_inserts_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(conn, row):\n"
            '    conn.execute("SELECT content FROM _nebula_annotations")\n'
            '    conn.execute("INSERT INTO _nebula_annotations VALUES '
            '(?, ?, ?, ?)", row)\n',
            rules=["NBL013"],
        )
        assert findings == []

    def test_history_and_operational_tables_clean(self, tmp_path):
        # The singular *_history names share the head-table prefix but
        # must not match; operational tables stay freely mutable.
        findings = lint(
            tmp_path,
            "def f(conn, cid, tid):\n"
            '    conn.execute("DELETE FROM _nebula_annotation_history '
            'WHERE commit_id = ?", (cid,))\n'
            '    conn.execute("UPDATE _nebula_verification_tasks SET '
            "status = 'verified' WHERE task_id = ?\", (tid,))\n",
            rules=["NBL013"],
        )
        assert findings == []

    def test_inline_ignore_suppresses(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(conn):\n"
            '    conn.execute("DELETE FROM _nebula_annotations")'
            "  # nebula-lint: ignore[NBL013]\n",
            rules=["NBL013"],
        )
        assert findings == []

    def test_fixture_modules(self):
        import os

        fixtures = os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "fixtures", "versioning"
        )
        bad = analyze_paths(
            [os.path.join(fixtures, "bad_versioned_write.py")], rules=["NBL013"]
        )
        assert len(bad) == 4
        assert {f.rule_id for f in bad} == {"NBL013"}
        good = analyze_paths(
            [os.path.join(fixtures, "good_versioned_write.py")], rules=["NBL013"]
        )
        assert good == []


# ----------------------------------------------------------------------
# Engine behaviors
# ----------------------------------------------------------------------


class TestEngine:
    def test_unknown_rule_id_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            lint(tmp_path, "x = 1\n", rules=["NBL999"])

    def test_rule_filter_restricts(self, tmp_path):
        source = (
            "import sqlite3\n"
            "def f(conn, w):\n"
            '    conn.execute(f"SELECT {w}")\n'
            "def g():\n"
            '    c = sqlite3.connect("x.db")\n'
            '    c.execute("SELECT 1")\n'
        )
        only_sql = lint(tmp_path, source, rules=["NBL001"])
        assert rule_ids(only_sql) == ["NBL001"]

    def test_syntax_error_raises(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        with pytest.raises(AnalysisError):
            analyze_paths([str(path)])

    def test_findings_sorted_and_serializable(self, tmp_path):
        findings = lint(
            tmp_path,
            "def f(conn, a, b):\n"
            '    conn.execute(f"SELECT {b}")\n'
            '    conn.execute(f"SELECT {a}")\n',
        )
        assert [f.line for f in findings] == [2, 3]
        payload = json.dumps([f.to_dict() for f in findings])
        assert "NBL001" in payload


# ----------------------------------------------------------------------
# Baseline workflow
# ----------------------------------------------------------------------


class TestBaseline:
    SOURCE = (
        "def f(conn, w):\n"
        '    conn.execute(f"SELECT * FROM t WHERE {w}")\n'
    )

    def test_baseline_round_trip(self, tmp_path):
        findings = lint(tmp_path, self.SOURCE)
        assert len(findings) == 1
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), findings)
        baseline = load_baseline(str(baseline_path))
        assert apply_baseline(findings, baseline) == []

    def test_fingerprint_survives_line_shift(self, tmp_path):
        findings = lint(tmp_path, self.SOURCE)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), findings)
        shifted = lint(tmp_path, "# a new comment above\n\n" + self.SOURCE)
        assert shifted[0].line != findings[0].line
        baseline = load_baseline(str(baseline_path))
        assert apply_baseline(shifted, baseline) == []

    def test_new_finding_not_absorbed(self, tmp_path):
        findings = lint(tmp_path, self.SOURCE)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), findings)
        grown = lint(
            tmp_path,
            self.SOURCE + '    conn.execute(f"DELETE FROM t WHERE {w}")\n',
        )
        baseline = load_baseline(str(baseline_path))
        fresh = apply_baseline(grown, baseline)
        assert len(fresh) == 1
        assert "DELETE" in fresh[0].snippet

    def test_cli_baseline_flow(self, tmp_path, capsys):
        source_path = tmp_path / "mod.py"
        source_path.write_text(self.SOURCE)
        baseline_path = tmp_path / "b.json"
        assert lint_main(
            [str(source_path), "--write-baseline", str(baseline_path)]
        ) == 0
        assert lint_main([str(source_path), "--baseline", str(baseline_path)]) == 0
        # --strict ignores the baseline.
        assert lint_main(
            [str(source_path), "--baseline", str(baseline_path), "--strict"]
        ) == 1
