"""Shared fixtures.

Two database worlds are used throughout the tests:

* ``figure1_db`` — a tiny, hand-built database mirroring the paper's
  Figure 1 (genes JW0013/grpC, JW0019/yaaB, ... plus a couple of
  proteins), with a manually populated NebulaMeta.  Deterministic and
  readable: unit tests assert exact mappings, matches, and queries on it.
* ``bio_db`` / ``bio_nebula`` — a small synthetic generated database
  (module-scoped), for integration-level tests that need organic
  co-annotation structure.
"""

from __future__ import annotations

import os
import sqlite3
import tempfile
from typing import List, Optional, Tuple

import pytest

from repro import (
    BioDatabaseSpec,
    ConceptRef,
    Nebula,
    NebulaConfig,
    NebulaMeta,
    Ontology,
    ValuePattern,
    generate_bio_database,
    get_backend,
)
from repro.meta.sampling import ColumnSample

FIGURE1_GENES = [
    # (GID, Name, Length, Seq, Family)
    ("JW0013", "grpC", 1130, "TGCT", "F1"),
    ("JW0014", "groP", 1916, "GGTT", "F6"),
    ("JW0015", "insL", 1112, "GGCT", "F1"),
    ("JW0018", "nhaA", 1166, "CGTT", "F1"),
    ("JW0019", "yaaB", 905, "TGTG", "F3"),
    ("JW0012", "yaaI", 404, "TTCG", "F1"),
    ("JW0027", "namE", 658, "GTTT", "F4"),
]

FIGURE1_PROTEINS = [
    # (PID, PName, PType, GID, Mass)
    ("P00001", "G-Actin", "enzyme", "JW0013", 41.8),
    ("P00002", "Ligase42", "ligase", "JW0014", 103.2),
    ("P00003", "B-Tubulin", "kinase", "JW0019", 55.1),
]


#: Backends created for builder-style callers, closed at session end
#: (with the throwaway database file, for the file engine).
_SESSION_BACKENDS: List[Tuple[object, Optional[str]]] = []


def _engine_connection() -> sqlite3.Connection:
    """A fresh empty database on the engine pinned by ``NEBULA_BACKEND``.

    The CI matrix sets the variable, routing every builder-based test
    through the named storage backend; unset, tests keep the historical
    private in-memory database.
    """
    pinned = os.environ.get("NEBULA_BACKEND")
    if not pinned:
        return sqlite3.connect(":memory:")
    path: Optional[str] = None
    if pinned == "sqlite-file":
        handle = tempfile.NamedTemporaryFile(
            suffix=".db", prefix="nebula-test-", delete=False
        )
        handle.close()
        path = handle.name
    backend = get_backend(pinned, path=path)
    _SESSION_BACKENDS.append((backend, path))
    return backend.primary


def pytest_sessionfinish(session, exitstatus):
    for backend, path in _SESSION_BACKENDS:
        backend.close()  # type: ignore[attr-defined]
        if path is not None and os.path.exists(path):
            os.unlink(path)
    _SESSION_BACKENDS.clear()


def build_figure1_connection(
    connection: Optional[sqlite3.Connection] = None,
) -> sqlite3.Connection:
    """Populate the Figure-1 schema on ``connection`` (a fresh database
    on the ``NEBULA_BACKEND`` engine when omitted)."""
    connection = connection or _engine_connection()
    connection.executescript(
        """
        CREATE TABLE Gene (
            GID TEXT PRIMARY KEY, Name TEXT NOT NULL, Length INTEGER NOT NULL,
            Seq TEXT NOT NULL, Family TEXT NOT NULL
        );
        CREATE TABLE Protein (
            PID TEXT PRIMARY KEY, PName TEXT NOT NULL, PType TEXT NOT NULL,
            GID TEXT NOT NULL REFERENCES Gene(GID), Mass REAL NOT NULL
        );
        """
    )
    connection.executemany(
        "INSERT INTO Gene VALUES (?, ?, ?, ?, ?)", FIGURE1_GENES
    )
    connection.executemany(
        "INSERT INTO Protein VALUES (?, ?, ?, ?, ?)", FIGURE1_PROTEINS
    )
    return connection


def build_figure1_meta() -> NebulaMeta:
    """NebulaMeta populated like the paper's Figure 3 ConceptRefs."""
    meta = NebulaMeta()
    meta.add_concept(
        ConceptRef.build("Gene", "Gene", [["GID"], ["Name"]],
                         equivalent_names=["genes", "locus"])
    )
    meta.add_concept(
        ConceptRef.build("Protein", "Protein", [["PID"], ["PName", "PType"]],
                         equivalent_names=["proteins"])
    )
    meta.add_concept(
        ConceptRef.build("Gene Family", "Gene", [["Family"]],
                         equivalent_names=["family"])
    )
    meta.add_table_equivalents("Gene", ["genes", "locus"])
    meta.add_table_equivalents("Protein", ["proteins"])
    meta.add_column_equivalents("Gene", "GID", ["id", "identifier"])
    meta.add_column_equivalents("Protein", "PID", ["id", "accession"])
    meta.attach_pattern("Gene", "GID", ValuePattern(r"JW[0-9]{4}"))
    meta.attach_pattern("Gene", "Name", ValuePattern(r"[a-z]{3}[A-Z]"))
    meta.attach_pattern("Protein", "PID", ValuePattern(r"P[0-9]{5}"))
    meta.attach_ontology(
        "Protein", "PType",
        Ontology("protein-types", ["enzyme", "kinase", "ligase", "receptor"]),
    )
    meta.attach_sample(
        ColumnSample("Protein", "PName", tuple(p[1] for p in FIGURE1_PROTEINS))
    )
    meta.attach_sample(
        ColumnSample("Gene", "Family", tuple(sorted({g[4] for g in FIGURE1_GENES})))
    )
    for table, column, declared in [
        ("Gene", "GID", "TEXT"), ("Gene", "Name", "TEXT"), ("Gene", "Family", "TEXT"),
        ("Protein", "PID", "TEXT"), ("Protein", "PName", "TEXT"),
        ("Protein", "PType", "TEXT"),
    ]:
        meta.set_column_type(table, column, declared)
    return meta


def _backend_params() -> list:
    """Engines the parametrized fixtures run against.

    ``NEBULA_BACKEND`` (the CI matrix axis) pins a single engine; with
    it unset every backend-parametrized test runs against both bundled
    engines.
    """
    pinned = os.environ.get("NEBULA_BACKEND")
    return [pinned] if pinned else ["sqlite-file", "sqlite-memory"]


@pytest.fixture(params=_backend_params())
def storage_backend(request, tmp_path):
    """A fresh storage backend of each bundled engine."""
    backend = get_backend(request.param, path=str(tmp_path / "backend.db"))
    yield backend
    backend.close()


@pytest.fixture
def figure1_connection(storage_backend):
    """The Figure-1 database on every bundled storage engine.

    Yields the backend's primary connection, so the historical
    connection-shaped fixture keeps working while the data actually
    lives behind a pluggable engine; the backend fixture closes it.
    """
    yield build_figure1_connection(storage_backend.primary)


@pytest.fixture
def figure1_meta():
    return build_figure1_meta()


@pytest.fixture
def figure1_db(figure1_connection, figure1_meta):
    """(connection, meta) pair for the hand-built world."""
    return figure1_connection, figure1_meta


SMALL_SPEC = BioDatabaseSpec(genes=80, proteins=48, publications=400, seed=7)


@pytest.fixture(scope="module")
def bio_db(tmp_path_factory):
    """A small generated bio-database (module-scoped: ~0.5 s to build).

    Honors ``NEBULA_BACKEND`` so the CI matrix drives the integration
    tests through each engine; unset, it keeps the historical private
    in-memory database.
    """
    pinned = os.environ.get("NEBULA_BACKEND")
    if not pinned:
        yield generate_bio_database(SMALL_SPEC)
        return
    path = tmp_path_factory.mktemp("bio") / "bio.db"
    with get_backend(pinned, path=str(path)) as backend:
        yield generate_bio_database(SMALL_SPEC, backend=backend)


@pytest.fixture(scope="module")
def bio_nebula(bio_db):
    """A Nebula engine over ``bio_db`` with the default 0.6 cutoff.

    Module-scoped and therefore *stateful across tests in a module*;
    tests that mutate (insert annotations) should use fresh labels and
    must not assume pristine stores.
    """
    return Nebula(
        bio_db.connection,
        bio_db.meta,
        NebulaConfig(epsilon=0.6),
        aliases=bio_db.aliases,
    )
