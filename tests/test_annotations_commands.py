"""Unit tests for the extended-SQL command layer."""

import pytest

from repro.annotations.commands import CommandProcessor
from repro.annotations.engine import AnnotationManager
from repro.errors import CommandError
from repro.types import TupleRef

from conftest import build_figure1_connection


class FakeResolver:
    """Minimal verification resolver recording calls."""

    def __init__(self):
        self.verified = []
        self.rejected = []
        self._pending = ["task-a", "task-b"]

    def verify(self, task_id):
        self.verified.append(task_id)

    def reject(self, task_id):
        self.rejected.append(task_id)

    def pending(self):
        return list(self._pending)


@pytest.fixture
def processor():
    manager = AnnotationManager(build_figure1_connection())
    return CommandProcessor(manager, resolver=FakeResolver(), author="alice")


class TestAddAnnotation:
    def test_where_predicate(self, processor):
        result = processor.execute(
            "ADD ANNOTATION 'flag F1 members' ON Gene WHERE Family = 'F1'"
        )
        annotation_id = result.ids[0]
        focal = processor.manager.focal_of(annotation_id)
        assert len(focal) == 4  # four F1 genes in the figure-1 data

    def test_rows_list(self, processor):
        result = processor.execute("ADD ANNOTATION 'two rows' ON Gene ROWS (1, 3)")
        focal = processor.manager.focal_of(result.ids[0])
        assert set(focal) == {TupleRef("Gene", 1), TupleRef("Gene", 3)}

    def test_column_target(self, processor):
        result = processor.execute(
            "ADD ANNOTATION 'cell note' ON Gene COLUMN Name ROWS (2)"
        )
        attachments = processor.manager.store.attachments_of(result.ids[0])
        assert attachments[0].column == "Name"

    def test_escaped_quote(self, processor):
        result = processor.execute(
            "ADD ANNOTATION 'it''s odd' ON Gene ROWS (1)"
        )
        annotation = processor.manager.annotation(result.ids[0])
        assert annotation.content == "it's odd"

    def test_author_recorded(self, processor):
        result = processor.execute("ADD ANNOTATION 'note' ON Gene ROWS (1)")
        assert processor.manager.annotation(result.ids[0]).author == "alice"

    def test_unknown_table(self, processor):
        with pytest.raises(Exception):
            processor.execute("ADD ANNOTATION 'x' ON Nothing ROWS (1)")

    def test_injection_shaped_predicate_rejected(self, processor):
        with pytest.raises(CommandError):
            processor.execute(
                "ADD ANNOTATION 'x' ON Gene WHERE Family = 'F1'; DROP TABLE Gene"
            )

    def test_invalid_predicate(self, processor):
        with pytest.raises(CommandError):
            processor.execute("ADD ANNOTATION 'x' ON Gene WHERE NoSuchCol = 1")


class TestVerifyReject:
    def test_verify(self, processor):
        result = processor.execute("VERIFY ATTACHMENT 7")
        assert processor.resolver.verified == [7]
        assert result.ids == (7,)

    def test_reject(self, processor):
        processor.execute("REJECT ATTACHMENT 9;")
        assert processor.resolver.rejected == [9]

    def test_paper_spelling_accepted(self, processor):
        processor.execute("Verify Attachement 3")
        assert processor.resolver.verified == [3]

    def test_requires_resolver(self):
        manager = AnnotationManager(build_figure1_connection())
        bare = CommandProcessor(manager)
        with pytest.raises(CommandError):
            bare.execute("VERIFY ATTACHMENT 1")


class TestListPending:
    def test_list(self, processor):
        result = processor.execute("LIST PENDING")
        assert result.rows == ("task-a", "task-b")
        assert "2 pending" in result.message


class TestParsing:
    def test_empty_statement(self, processor):
        with pytest.raises(CommandError):
            processor.execute("   ")

    def test_unrecognized(self, processor):
        with pytest.raises(CommandError):
            processor.execute("SELECT * FROM Gene")
