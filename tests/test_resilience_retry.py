"""Tests for the resilience primitives: RetryPolicy, Savepoint, and the
retry seams threaded through the store, the search engine, and the
spreading mini-database."""

import sqlite3

import pytest

from repro.annotations.store import AnnotationStore
from repro.core.acg import AnnotationsConnectivityGraph
from repro.core.spreading import MiniDatabase
from repro.errors import TransientStorageError
from repro.resilience import (
    FaultInjector,
    InjectedFault,
    RetryPolicy,
    Savepoint,
    is_transient_operational_error,
    no_retry,
)
from repro.search.engine import KeywordQuery, KeywordSearchEngine
from repro.types import CellRef, TupleRef

from conftest import build_figure1_connection


class FlakyConnection:
    """Connection proxy failing the next N mutating ``execute`` calls.

    Reads always succeed — only writes hit the simulated lock, which is
    how SQLite lock contention actually manifests for a writer.
    """

    _WRITE_PREFIXES = ("INSERT", "UPDATE", "DELETE", "CREATE", "DROP")

    def __init__(self, connection: sqlite3.Connection):
        self._connection = connection
        self.fail_next = 0
        self.fail_select_next = 0
        self.lock_errors_raised = 0

    def execute(self, sql, params=()):
        is_write = sql.lstrip().upper().startswith(self._WRITE_PREFIXES)
        if is_write and self.fail_next > 0:
            self.fail_next -= 1
            self.lock_errors_raised += 1
            raise sqlite3.OperationalError("database is locked")
        if not is_write and self.fail_select_next > 0:
            self.fail_select_next -= 1
            self.lock_errors_raised += 1
            raise sqlite3.OperationalError("database is locked")
        return self._connection.execute(sql, params)

    def __getattr__(self, name):
        return getattr(self._connection, name)


def recording_policy(max_attempts=3, **kwargs):
    """A fast policy whose sleeps are recorded instead of slept."""
    sleeps = []
    policy = RetryPolicy(
        max_attempts=max_attempts, base_delay=0.01, sleep=sleeps.append, **kwargs
    )
    return policy, sleeps


class TestRetryPolicy:
    def test_succeeds_after_transient_failures(self):
        policy, sleeps = recording_policy(max_attempts=3)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise sqlite3.OperationalError("database is locked")
            return "ok"

        assert policy.run(flaky) == "ok"
        assert len(attempts) == 3
        assert len(sleeps) == 2

    def test_backoff_is_exponential_and_deterministic(self):
        policy, sleeps = recording_policy(max_attempts=4, jitter=0.0)
        with pytest.raises(TransientStorageError):
            policy.run(lambda: (_ for _ in ()).throw(
                sqlite3.OperationalError("database is locked")))
        assert sleeps == [0.01, 0.02, 0.04]
        # The schedule is a pure function of the policy.
        assert RetryPolicy(max_attempts=4, base_delay=0.01, jitter=0.0).schedule() == sleeps

    def test_jitter_is_seeded_not_wall_clock(self):
        first = RetryPolicy(seed=5).delay_for(1)
        second = RetryPolicy(seed=5).delay_for(1)
        assert first == second
        assert RetryPolicy(seed=6).delay_for(1) != first

    def test_delay_capped_at_max(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=0.1, max_delay=0.2, jitter=0.0
        )
        assert policy.delay_for(9) == 0.2

    def test_exhaustion_wraps_in_transient_storage_error(self):
        policy, _ = recording_policy(max_attempts=2)

        def always_locked():
            raise sqlite3.OperationalError("database table is locked")

        with pytest.raises(TransientStorageError) as exc_info:
            policy.run(always_locked, "probe")
        assert exc_info.value.attempts == 2
        assert isinstance(exc_info.value.__cause__, sqlite3.OperationalError)

    def test_non_transient_errors_propagate_immediately(self):
        policy, sleeps = recording_policy(max_attempts=5)
        with pytest.raises(sqlite3.OperationalError):
            policy.run(lambda: (_ for _ in ()).throw(
                sqlite3.OperationalError("no such table: Nope")))
        assert sleeps == []
        with pytest.raises(ValueError):
            policy.run(lambda: (_ for _ in ()).throw(ValueError("logic bug")))

    def test_no_retry_gives_up_immediately(self):
        policy = no_retry()
        with pytest.raises(TransientStorageError):
            policy.run(lambda: (_ for _ in ()).throw(
                sqlite3.OperationalError("database is locked")))

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=0.5, max_delay=0.1)

    @pytest.mark.parametrize(
        "error,expected",
        [
            (sqlite3.OperationalError("database is locked"), True),
            (sqlite3.OperationalError("database table is locked"), True),
            (sqlite3.OperationalError("database is busy"), True),
            (sqlite3.OperationalError("no such column: x"), False),
            (sqlite3.IntegrityError("UNIQUE constraint failed"), False),
            (TransientStorageError("wrapped"), True),
            (ValueError("nope"), False),
        ],
    )
    def test_transient_classification(self, error, expected):
        assert is_transient_operational_error(error) is expected


class TestStoreRetry:
    def test_insert_retries_through_lock(self):
        flaky = FlakyConnection(build_figure1_connection())
        policy, sleeps = recording_policy(max_attempts=3)
        store = AnnotationStore(flaky, retry=policy)
        flaky.fail_next = 2
        annotation = store.insert_annotation("retried")
        assert annotation.annotation_id >= 1
        assert flaky.lock_errors_raised == 2
        assert len(sleeps) == 2
        assert store.get_annotation(annotation.annotation_id).content == "retried"

    def test_attach_exhaustion_raises_transient(self):
        flaky = FlakyConnection(build_figure1_connection())
        policy, _ = recording_policy(max_attempts=2)
        store = AnnotationStore(flaky, retry=policy)
        annotation = store.insert_annotation("x")
        flaky.fail_next = 99
        with pytest.raises(TransientStorageError):
            store.attach(annotation.annotation_id, CellRef("Gene", 1))

    def test_no_policy_keeps_fail_fast(self):
        flaky = FlakyConnection(build_figure1_connection())
        store = AnnotationStore(flaky)
        flaky.fail_next = 1
        with pytest.raises(sqlite3.OperationalError):
            store.insert_annotation("fails")


class TestEngineRetry:
    def test_execute_sql_retries_through_lock(self):
        flaky = FlakyConnection(build_figure1_connection())
        policy, sleeps = recording_policy(max_attempts=3)
        engine = KeywordSearchEngine(
            flaky, searchable_columns=[("Gene", "GID")], retry=policy
        )
        flaky.fail_select_next = 2
        result = engine.search(KeywordQuery(("JW0013",)))
        assert TupleRef("Gene", 1) in result.refs
        assert flaky.lock_errors_raised == 2
        assert len(sleeps) == 2


class TestSpreadingRetry:
    def test_materialize_retries_through_lock(self):
        flaky = FlakyConnection(build_figure1_connection())
        policy, sleeps = recording_policy(max_attempts=3)
        flaky.fail_next = 2
        mini = MiniDatabase.materialize(
            flaky, [TupleRef("Gene", 1), TupleRef("Gene", 2)], retry=policy
        )
        assert mini.row_counts == {"Gene": 2}
        assert len(sleeps) == 2
        mini.drop()


class TestSavepoint:
    def test_rollback_undoes_writes(self):
        connection = build_figure1_connection()
        savepoint = Savepoint(connection, "test").begin()
        connection.execute("DELETE FROM Gene")
        savepoint.rollback()
        count = connection.execute("SELECT COUNT(*) FROM Gene").fetchone()[0]
        assert count == 7
        assert not savepoint.active

    def test_release_keeps_writes(self):
        connection = build_figure1_connection()
        with Savepoint(connection, "test"):
            connection.execute("DELETE FROM Gene WHERE rowid = 1")
        count = connection.execute("SELECT COUNT(*) FROM Gene").fetchone()[0]
        assert count == 6

    def test_context_manager_rolls_back_on_error(self):
        connection = build_figure1_connection()
        with pytest.raises(RuntimeError):
            with Savepoint(connection, "test"):
                connection.execute("DELETE FROM Gene")
                raise RuntimeError("boom")
        count = connection.execute("SELECT COUNT(*) FROM Gene").fetchone()[0]
        assert count == 7

    def test_nested_savepoints_roll_back_independently(self):
        connection = build_figure1_connection()
        outer = Savepoint(connection, "outer").begin()
        connection.execute("DELETE FROM Gene WHERE rowid = 1")
        inner = Savepoint(connection, "inner").begin()
        connection.execute("DELETE FROM Gene WHERE rowid = 2")
        inner.rollback()
        outer.release()
        count = connection.execute("SELECT COUNT(*) FROM Gene").fetchone()[0]
        assert count == 6


class TestFaultInjector:
    def test_default_fault_and_counters(self):
        faults = FaultInjector()
        faults.arm("queue.triage")
        with pytest.raises(InjectedFault):
            faults.check("queue.triage")
        # times=1: the arming auto-clears after firing.
        faults.check("queue.triage")
        assert faults.fired("queue.triage") == 1
        assert faults.fired() == 1

    def test_unarmed_points_pass(self):
        FaultInjector().check("store.add")

    def test_typod_point_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector().arm("store.ad")

    def test_custom_exception_and_times(self):
        faults = FaultInjector()
        faults.arm("store.add", sqlite3.OperationalError("database is locked"), times=2)
        for _ in range(2):
            with pytest.raises(sqlite3.OperationalError):
                faults.check("store.add")
        faults.check("store.add")
        assert faults.fired("store.add") == 2

    def test_negative_times_fires_until_disarmed(self):
        faults = FaultInjector()
        faults.arm("executor.run", times=-1)
        for _ in range(3):
            with pytest.raises(InjectedFault):
                faults.check("executor.run")
        faults.disarm("executor.run")
        faults.check("executor.run")
        assert faults.fired("executor.run") == 3

    def test_reset_clears_everything(self):
        faults = FaultInjector()
        faults.arm("spreading.scope", times=-1)
        with pytest.raises(InjectedFault):
            faults.check("spreading.scope")
        faults.reset()
        faults.check("spreading.scope")
        assert faults.fired() == 0


class TestAcgRemoveAnnotation:
    def test_remove_undoes_add(self):
        acg = AnnotationsConnectivityGraph()
        a, b = TupleRef("Gene", 1), TupleRef("Gene", 2)
        acg.add_attachment(1, a)
        acg.add_attachment(1, b)
        assert (acg.node_count, acg.edge_count) == (2, 1)
        removed = acg.remove_annotation(1)
        assert removed == 1
        assert (acg.node_count, acg.edge_count) == (0, 0)
        assert not acg.contains(a)

    def test_shared_edges_survive(self):
        acg = AnnotationsConnectivityGraph()
        a, b, c = TupleRef("Gene", 1), TupleRef("Gene", 2), TupleRef("Gene", 3)
        acg.add_attachment(1, a)
        acg.add_attachment(1, b)
        acg.add_attachment(2, a)
        acg.add_attachment(2, b)
        acg.add_attachment(2, c)
        edges_with_both = acg.edge_count
        removed = acg.remove_annotation(2)
        # The a-b edge is still justified by annotation 1; a-c and b-c go.
        assert removed == 2
        assert acg.edge_count == edges_with_both - 2
        assert acg.weight(a, b) > 0.0
        assert not acg.contains(c)

    def test_remove_unknown_annotation_is_noop(self):
        acg = AnnotationsConnectivityGraph()
        acg.add_attachment(1, TupleRef("Gene", 1))
        assert acg.remove_annotation(99) == 0
        assert acg.node_count == 1
