"""Unit tests for the embedded lexicon (WordNet substitute)."""

from repro.meta.lexicon import DEFAULT_LEXICON, Lexicon


class TestLexicon:
    def test_synonyms_are_symmetric(self):
        lex = Lexicon([("gene", "locus", "cistron")])
        assert lex.are_synonyms("gene", "locus")
        assert lex.are_synonyms("locus", "gene")

    def test_word_is_its_own_synonym(self):
        lex = Lexicon()
        assert lex.are_synonyms("gene", "Gene")

    def test_synonyms_excludes_self(self):
        lex = Lexicon([("gene", "locus")])
        assert "gene" not in lex.synonyms("gene")
        assert lex.synonyms("gene") == frozenset({"locus"})

    def test_unknown_word_has_no_synonyms(self):
        assert Lexicon().synonyms("quux") == frozenset()

    def test_multiple_synsets_union(self):
        lex = Lexicon([("bank", "shore"), ("bank", "institution")])
        assert lex.synonyms("bank") == frozenset({"shore", "institution"})

    def test_case_insensitive(self):
        lex = Lexicon([("Gene", "LOCUS")])
        assert lex.are_synonyms("gene", "locus")

    def test_single_word_synset_ignored(self):
        lex = Lexicon([("gene",)])
        assert len(lex) == 0

    def test_hyponyms(self):
        lex = Lexicon(hyponyms={"molecule": ("protein", "enzyme")})
        assert lex.is_hyponym("protein", "molecule")
        assert not lex.is_hyponym("molecule", "protein")
        assert lex.hyponyms("molecule") == frozenset({"protein", "enzyme"})

    def test_add_hyponyms_merges(self):
        lex = Lexicon()
        lex.add_hyponyms("record", ["gene"])
        lex.add_hyponyms("record", ["protein"])
        assert lex.hyponyms("record") == frozenset({"gene", "protein"})

    def test_knows(self):
        lex = Lexicon([("gene", "locus")], {"molecule": ("protein",)})
        assert lex.knows("gene")
        assert lex.knows("molecule")
        assert not lex.knows("xyzzy")


class TestDefaultLexicon:
    def test_domain_synonyms_present(self):
        assert DEFAULT_LEXICON.are_synonyms("gene", "locus")
        assert DEFAULT_LEXICON.are_synonyms("protein", "enzyme")
        assert DEFAULT_LEXICON.are_synonyms("id", "identifier")

    def test_nonsense_not_synonyms(self):
        assert not DEFAULT_LEXICON.are_synonyms("gene", "protein")

    def test_has_reasonable_size(self):
        assert len(DEFAULT_LEXICON) >= 20
