"""Unit + property tests for the ACG, stability tracking, and hop profile."""

import pytest
from hypothesis import given, strategies as st

from repro.annotations.engine import AnnotationManager
from repro.core.acg import (
    UNREACHABLE,
    AnnotationsConnectivityGraph,
    HopProfile,
    StabilityTracker,
)
from repro.types import CellRef, TupleRef

from conftest import build_figure1_connection


def _ref(i: int) -> TupleRef:
    return TupleRef("Gene", i)


class TestGraphConstruction:
    def test_shared_annotation_creates_edge(self):
        acg = AnnotationsConnectivityGraph()
        acg.add_attachment(1, _ref(1))
        new_edges = acg.add_attachment(1, _ref(2))
        assert new_edges == 1
        assert _ref(2) in acg.neighbors(_ref(1))

    def test_duplicate_attachment_ignored(self):
        acg = AnnotationsConnectivityGraph()
        acg.add_attachment(1, _ref(1))
        acg.add_attachment(1, _ref(2))
        assert acg.add_attachment(1, _ref(2)) == 0
        assert acg.edge_count == 1

    def test_existing_edge_not_recounted(self):
        acg = AnnotationsConnectivityGraph()
        acg.add_attachment(1, _ref(1))
        acg.add_attachment(1, _ref(2))
        acg.add_attachment(2, _ref(1))
        assert acg.add_attachment(2, _ref(2)) == 0  # edge already exists
        assert acg.edge_count == 1

    def test_clique_per_annotation(self):
        acg = AnnotationsConnectivityGraph()
        for i in range(1, 5):
            acg.add_attachment(7, _ref(i))
        assert acg.edge_count == 6  # C(4, 2)

    def test_build_from_manager(self):
        manager = AnnotationManager(build_figure1_connection())
        manager.add_annotation("a", attach_to=[CellRef("Gene", 1), CellRef("Gene", 2)])
        manager.add_annotation("b", attach_to=[CellRef("Gene", 2), CellRef("Gene", 3)])
        acg = AnnotationsConnectivityGraph.build_from_manager(manager)
        assert acg.node_count == 3
        assert acg.edge_count == 2


class TestWeights:
    def test_jaccard_weight(self):
        acg = AnnotationsConnectivityGraph()
        # t1: {1, 2}; t2: {1, 3} -> common 1, union 3.
        for ann, refs in [(1, [1, 2]), (2, [1]), (3, [2])]:
            for r in refs:
                acg.add_attachment(ann, _ref(r))
        assert acg.weight(_ref(1), _ref(2)) == pytest.approx(1 / 3)

    def test_weight_symmetric(self):
        acg = AnnotationsConnectivityGraph()
        acg.add_attachment(1, _ref(1))
        acg.add_attachment(1, _ref(2))
        assert acg.weight(_ref(1), _ref(2)) == acg.weight(_ref(2), _ref(1))

    def test_no_common_annotation_zero(self):
        acg = AnnotationsConnectivityGraph()
        acg.add_attachment(1, _ref(1))
        acg.add_attachment(2, _ref(2))
        assert acg.weight(_ref(1), _ref(2)) == 0.0

    def test_identical_sets_weight_one(self):
        acg = AnnotationsConnectivityGraph()
        for ann in (1, 2):
            acg.add_attachment(ann, _ref(1))
            acg.add_attachment(ann, _ref(2))
        assert acg.weight(_ref(1), _ref(2)) == 1.0


class TestTraversals:
    @pytest.fixture
    def chain(self):
        # 1 - 2 - 3 - 4 via chained annotations.
        acg = AnnotationsConnectivityGraph()
        for ann, (a, b) in enumerate([(1, 2), (2, 3), (3, 4)], start=1):
            acg.add_attachment(ann, _ref(a))
            acg.add_attachment(ann, _ref(b))
        return acg

    def test_k_hop_expansion(self, chain):
        assert chain.k_hop_neighbors([_ref(1)], 1) == frozenset({_ref(1), _ref(2)})
        assert chain.k_hop_neighbors([_ref(1)], 2) == frozenset(
            {_ref(1), _ref(2), _ref(3)}
        )

    def test_k_hop_excluding_seeds(self, chain):
        assert chain.k_hop_neighbors([_ref(1)], 1, include_seeds=False) == frozenset(
            {_ref(2)}
        )

    def test_k_hop_multiple_seeds(self, chain):
        reached = chain.k_hop_neighbors([_ref(1), _ref(4)], 1)
        assert reached == frozenset({_ref(1), _ref(2), _ref(3), _ref(4)})

    def test_k_hop_unknown_seed(self, chain):
        assert chain.k_hop_neighbors([_ref(99)], 2) == frozenset()

    def test_shortest_hops(self, chain):
        assert chain.shortest_hops(_ref(4), [_ref(1)]) == 3
        assert chain.shortest_hops(_ref(1), [_ref(1)]) == 0
        assert chain.shortest_hops(_ref(2), [_ref(1), _ref(3)]) == 1

    def test_shortest_hops_unreachable(self, chain):
        chain.add_attachment(99, _ref(50))  # isolated node
        assert chain.shortest_hops(_ref(50), [_ref(1)]) == UNREACHABLE
        assert chain.shortest_hops(_ref(99), [_ref(1)]) == UNREACHABLE


@given(st.lists(st.tuples(st.integers(1, 6), st.integers(1, 8)), max_size=40))
def test_acg_invariants(attachments):
    """Property: edge symmetry, no self loops, edge count consistency."""
    acg = AnnotationsConnectivityGraph()
    for annotation_id, tuple_index in attachments:
        acg.add_attachment(annotation_id, _ref(tuple_index))
    seen_edges = set()
    for node in [_ref(i) for i in range(1, 9)]:
        for neighbor in acg.neighbors(node):
            assert neighbor != node
            assert node in acg.neighbors(neighbor)
            assert acg.weight(node, neighbor) > 0.0
            seen_edges.add(frozenset((node, neighbor)))
    assert len(seen_edges) == acg.edge_count


@given(st.lists(st.integers(0, 6), max_size=60))
def test_k_hop_monotone_in_k(hops_points):
    """Property: the K-hop neighborhood grows monotonically with K."""
    acg = AnnotationsConnectivityGraph()
    for ann, (a, b) in enumerate([(1, 2), (2, 3), (2, 4), (4, 5)], start=1):
        acg.add_attachment(ann, _ref(a))
        acg.add_attachment(ann, _ref(b))
    previous = frozenset()
    for k in range(0, 5):
        current = acg.k_hop_neighbors([_ref(1)], k)
        assert previous <= current
        previous = current


class TestStabilityTracker:
    def test_stable_when_few_new_edges(self):
        tracker = StabilityTracker(batch_size=2, mu=0.5)
        assert tracker.record_annotation(attachments=4, new_edges=0) is None
        result = tracker.record_annotation(attachments=4, new_edges=1)
        assert result is True  # 1/8 < 0.5
        assert tracker.stable

    def test_unstable_when_many_new_edges(self):
        tracker = StabilityTracker(batch_size=1, mu=0.1)
        assert tracker.record_annotation(attachments=2, new_edges=2) is False
        assert not tracker.stable

    def test_counters_reset_between_batches(self):
        tracker = StabilityTracker(batch_size=1, mu=0.5)
        tracker.record_annotation(attachments=10, new_edges=9)  # unstable
        tracker.record_annotation(attachments=10, new_edges=0)  # stable again
        assert tracker.stable
        assert len(tracker.history) == 2

    def test_flag_can_flip_back(self):
        tracker = StabilityTracker(batch_size=1, mu=0.5)
        tracker.record_annotation(attachments=2, new_edges=0)
        assert tracker.stable
        tracker.record_annotation(attachments=2, new_edges=2)
        assert not tracker.stable

    def test_zero_attachment_batch(self):
        tracker = StabilityTracker(batch_size=1, mu=0.5)
        assert tracker.record_annotation(attachments=0, new_edges=0) is True


class TestHopProfile:
    def test_record_and_coverage(self):
        profile = HopProfile()
        for hops in [1, 1, 2, 2, 2, 3]:
            profile.record(hops)
        assert profile.total == 6
        assert profile.coverage(1) == pytest.approx(2 / 6)
        assert profile.coverage(2) == pytest.approx(5 / 6)
        assert profile.coverage(3) == 1.0

    def test_unreachable_counts_against_coverage(self):
        profile = HopProfile()
        profile.record(1)
        profile.record(UNREACHABLE)
        assert profile.coverage(5) == pytest.approx(0.5)

    def test_select_k(self):
        profile = HopProfile()
        for hops in [1] * 71 + [2] * 22 + [3] * 7:
            profile.record(hops)
        assert profile.select_k(0.90) == 2
        assert profile.select_k(0.95) == 3

    def test_select_k_no_history(self):
        assert HopProfile().select_k(0.9, k_max=5) == 5

    def test_as_rows(self):
        profile = HopProfile()
        profile.record(0)
        profile.record(2)
        rows = profile.as_rows()
        assert rows[0] == (0, 1, 0.5)
        assert rows[2] == (2, 1, 1.0)
        assert rows[1][1] == 0
