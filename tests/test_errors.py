"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_class",
        [
            errors.ConfigurationError,
            errors.StorageError,
            errors.MetadataError,
            errors.SearchError,
            errors.WorkloadError,
            errors.VerificationError,
            errors.CommandError,
        ],
    )
    def test_all_derive_from_base(self, exc_class):
        assert issubclass(exc_class, errors.NebulaError)

    def test_specific_storage_errors(self):
        assert issubclass(errors.UnknownTableError, errors.StorageError)
        assert issubclass(errors.UnknownColumnError, errors.StorageError)
        assert issubclass(errors.UnknownAnnotationError, errors.StorageError)
        assert issubclass(errors.UnknownTupleError, errors.StorageError)

    def test_unknown_table_carries_context(self):
        error = errors.UnknownTableError("Foo")
        assert error.table == "Foo"
        assert "Foo" in str(error)

    def test_unknown_column_carries_context(self):
        error = errors.UnknownColumnError("Gene", "Bar")
        assert (error.table, error.column) == ("Gene", "Bar")
        assert "Bar" in str(error)

    def test_unknown_annotation_carries_id(self):
        assert errors.UnknownAnnotationError(42).annotation_id == 42

    def test_unknown_tuple_carries_ref(self):
        error = errors.UnknownTupleError("Gene", 7)
        assert (error.table, error.rowid) == ("Gene", 7)

    def test_unknown_concept(self):
        assert issubclass(errors.UnknownConceptError, errors.MetadataError)
        assert errors.UnknownConceptError("X").concept == "X"

    def test_unknown_verification_task(self):
        error = errors.UnknownVerificationTaskError(9)
        assert error.task_id == 9
        assert issubclass(type(error), errors.VerificationError)

    def test_empty_query_is_search_error(self):
        assert issubclass(errors.EmptyQueryError, errors.SearchError)

    def test_catch_all(self):
        with pytest.raises(errors.NebulaError):
            raise errors.UnknownTableError("anything")
