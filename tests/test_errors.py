"""Tests for the exception hierarchy and the public code paths that
raise each class."""

import pytest

from repro import errors
from repro.annotations.commands import CommandProcessor
from repro.annotations.engine import AnnotationManager
from repro.config import NebulaConfig
from repro.core.verification import VerificationQueue
from repro.datagen.workload import WorkloadAnnotation
from repro.search.engine import KeywordQuery, KeywordSearchEngine
from repro.types import CellRef, TupleRef

from conftest import build_figure1_connection, build_figure1_meta


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_class",
        [
            errors.ConfigurationError,
            errors.StorageError,
            errors.MetadataError,
            errors.SearchError,
            errors.WorkloadError,
            errors.VerificationError,
            errors.CommandError,
        ],
    )
    def test_all_derive_from_base(self, exc_class):
        assert issubclass(exc_class, errors.NebulaError)

    def test_specific_storage_errors(self):
        assert issubclass(errors.UnknownTableError, errors.StorageError)
        assert issubclass(errors.UnknownColumnError, errors.StorageError)
        assert issubclass(errors.UnknownAnnotationError, errors.StorageError)
        assert issubclass(errors.UnknownTupleError, errors.StorageError)

    def test_unknown_table_carries_context(self):
        error = errors.UnknownTableError("Foo")
        assert error.table == "Foo"
        assert "Foo" in str(error)

    def test_unknown_column_carries_context(self):
        error = errors.UnknownColumnError("Gene", "Bar")
        assert (error.table, error.column) == ("Gene", "Bar")
        assert "Bar" in str(error)

    def test_unknown_annotation_carries_id(self):
        assert errors.UnknownAnnotationError(42).annotation_id == 42

    def test_unknown_tuple_carries_ref(self):
        error = errors.UnknownTupleError("Gene", 7)
        assert (error.table, error.rowid) == ("Gene", 7)

    def test_unknown_concept(self):
        assert issubclass(errors.UnknownConceptError, errors.MetadataError)
        assert errors.UnknownConceptError("X").concept == "X"

    def test_unknown_verification_task(self):
        error = errors.UnknownVerificationTaskError(9)
        assert error.task_id == 9
        assert issubclass(type(error), errors.VerificationError)

    def test_empty_query_is_search_error(self):
        assert issubclass(errors.EmptyQueryError, errors.SearchError)

    def test_catch_all(self):
        with pytest.raises(errors.NebulaError):
            raise errors.UnknownTableError("anything")

    def test_resilience_errors_in_hierarchy(self):
        assert issubclass(errors.TransientStorageError, errors.StorageError)
        assert issubclass(errors.PipelineStageError, errors.NebulaError)
        assert issubclass(errors.DeadLetterError, errors.NebulaError)

    def test_transient_storage_carries_attempts(self):
        error = errors.TransientStorageError("database is locked", attempts=3)
        assert error.attempts == 3
        assert "3 attempt" in str(error)

    def test_pipeline_stage_carries_stage_and_cause(self):
        original = RuntimeError("boom")
        error = errors.PipelineStageError("queue.triage", original)
        assert error.stage == "queue.triage"
        assert error.original is original
        assert error.dead_letter_id is None
        assert "queue.triage" in str(error)

    def test_dead_letter_carries_id(self):
        error = errors.DeadLetterError(7, "unknown dead letter")
        assert error.letter_id == 7
        assert "7" in str(error)


class TestPublicTriggers:
    """Every exception class raised through the public API that owns it."""

    @pytest.fixture()
    def manager(self):
        return AnnotationManager(build_figure1_connection())

    def test_unknown_table(self, manager):
        with pytest.raises(errors.UnknownTableError) as exc_info:
            manager.add_annotation("note", attach_to=[CellRef("NoSuchTable", 1)])
        assert exc_info.value.table == "NoSuchTable"

    def test_unknown_column(self, manager):
        annotation = manager.add_annotation("note")
        with pytest.raises(errors.UnknownColumnError) as exc_info:
            manager.attach_true(
                annotation.annotation_id, CellRef("Gene", 1, column="NoSuchColumn")
            )
        assert exc_info.value.column == "NoSuchColumn"

    def test_unknown_annotation(self, manager):
        with pytest.raises(errors.UnknownAnnotationError):
            manager.annotation(999)

    def test_unknown_tuple(self, manager):
        with pytest.raises(errors.UnknownTupleError) as exc_info:
            manager.add_annotation("note", attach_to=[CellRef("Gene", 999999)])
        assert exc_info.value.rowid == 999999

    def test_empty_content_is_storage_error(self, manager):
        with pytest.raises(errors.StorageError):
            manager.add_annotation("   ")

    def test_empty_query(self):
        engine = KeywordSearchEngine(
            build_figure1_connection(), searchable_columns=[("Gene", "GID")]
        )
        with pytest.raises(errors.EmptyQueryError):
            engine.search(KeywordQuery(()))

    def test_unknown_concept(self):
        with pytest.raises(errors.UnknownConceptError):
            build_figure1_meta().get_concept("nonexistent")

    def test_unknown_verification_task(self, manager):
        queue = VerificationQueue(manager)
        with pytest.raises(errors.UnknownVerificationTaskError):
            queue.verify(9999)

    def test_verification_bounds(self, manager):
        queue = VerificationQueue(manager)
        annotation = manager.add_annotation("note")
        with pytest.raises(errors.VerificationError):
            queue.triage(annotation.annotation_id, [], beta_lower=0.9, beta_upper=0.1)

    def test_command_errors(self, manager):
        commands = CommandProcessor(manager)
        with pytest.raises(errors.CommandError):
            commands.execute("   ")
        with pytest.raises(errors.CommandError):
            commands.execute("FROB THE DATABASE")

    def test_configuration_error(self):
        with pytest.raises(errors.ConfigurationError):
            NebulaConfig(epsilon=-1.0)
        with pytest.raises(errors.ConfigurationError):
            NebulaConfig(retry_max_attempts=0)
        with pytest.raises(errors.ConfigurationError):
            NebulaConfig(retry_base_delay=1.0, retry_max_delay=0.1)

    def test_workload_error(self):
        annotation = WorkloadAnnotation(
            label="L100.1-2.0",
            size_limit=100,
            band=(1, 2),
            text="gene JW0013",
            references=(),
            ideal_refs=(TupleRef("Gene", 1), TupleRef("Gene", 2)),
            ideal_keywords=frozenset(),
        )
        with pytest.raises(errors.WorkloadError):
            annotation.focal(delta=0)
