"""Output formats, fingerprint v2 / baseline migration, and CLI knobs.

The SARIF document is validated against the bundled SARIF 2.1.0 schema
subset via ``jsonschema`` when available (it is in CI); without it the
structural assertions still run.
"""

import io
import json
import textwrap

import pytest

from repro.analysis import analyze_paths, to_sarif
from repro.analysis.baseline import (
    BASELINE_VERSION,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.findings import Finding
from repro.analysis.rules import ALL_RULE_IDS

BAD_SOURCE = textwrap.dedent(
    """
    def fetch(conn, user):
        return conn.execute(
            f"SELECT * FROM users WHERE name = '{user}'"
        ).fetchall()
    """
)


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(BAD_SOURCE)
    return path


# ----------------------------------------------------------------------
# --format
# ----------------------------------------------------------------------


class TestFormats:
    def test_json_flag_and_format_json_are_byte_identical(self, bad_file):
        legacy, modern = io.StringIO(), io.StringIO()
        assert lint_main([str(bad_file), "--json"], out=legacy) == 1
        assert lint_main([str(bad_file), "--format", "json"], out=modern) == 1
        assert legacy.getvalue() == modern.getvalue()

    def test_human_format_stable_across_jobs(self, bad_file):
        one, four = io.StringIO(), io.StringIO()
        lint_main([str(bad_file), "--jobs", "1"], out=one)
        lint_main([str(bad_file), "--jobs", "4"], out=four)
        assert one.getvalue() == four.getvalue()

    def test_json_conflicts_with_other_format(self, bad_file):
        out = io.StringIO()
        assert (
            lint_main([str(bad_file), "--json", "--format", "sarif"], out=out)
            == 2
        )

    def test_sarif_format_emits_valid_log(self, bad_file):
        out = io.StringIO()
        assert lint_main([str(bad_file), "--format", "sarif"], out=out) == 1
        log = json.loads(out.getvalue())
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "nebula-lint"
        (result,) = run["results"]
        assert result["ruleId"] == "NBL001"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("bad.py")
        assert location["region"]["startLine"] == 3


class TestSarifDocument:
    def test_driver_advertises_every_rule(self, bad_file):
        log = to_sarif(analyze_paths([str(bad_file)]))
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == list(ALL_RULE_IDS)

    def test_rule_index_points_at_matching_rule(self, bad_file):
        log = to_sarif(analyze_paths([str(bad_file)]))
        run = log["runs"][0]
        for result in run["results"]:
            indexed = run["tool"]["driver"]["rules"][result["ruleIndex"]]
            assert indexed["id"] == result["ruleId"]

    def test_validates_against_sarif_210_schema(self, bad_file):
        jsonschema = pytest.importorskip("jsonschema")
        # The structural subset of the published SARIF 2.1.0 schema that
        # covers everything nebula-lint emits.  Vendoring the full
        # 1.3 MB schema buys nothing: the properties below are the ones
        # GitHub code scanning actually requires of an uploaded log.
        schema = {
            "type": "object",
            "required": ["version", "runs"],
            "properties": {
                "version": {"const": "2.1.0"},
                "$schema": {"type": "string"},
                "runs": {
                    "type": "array",
                    "minItems": 1,
                    "items": {
                        "type": "object",
                        "required": ["tool", "results"],
                        "properties": {
                            "tool": {
                                "type": "object",
                                "required": ["driver"],
                                "properties": {
                                    "driver": {
                                        "type": "object",
                                        "required": ["name"],
                                        "properties": {
                                            "name": {"type": "string"},
                                            "rules": {
                                                "type": "array",
                                                "items": {
                                                    "type": "object",
                                                    "required": ["id"],
                                                },
                                            },
                                        },
                                    }
                                },
                            },
                            "results": {
                                "type": "array",
                                "items": {
                                    "type": "object",
                                    "required": ["ruleId", "message"],
                                    "properties": {
                                        "ruleId": {"type": "string"},
                                        "ruleIndex": {
                                            "type": "integer",
                                            "minimum": 0,
                                        },
                                        "level": {
                                            "enum": [
                                                "none",
                                                "note",
                                                "warning",
                                                "error",
                                            ]
                                        },
                                        "message": {
                                            "type": "object",
                                            "required": ["text"],
                                        },
                                        "locations": {"type": "array"},
                                    },
                                },
                            },
                        },
                    },
                },
            },
        }
        log = to_sarif(analyze_paths([str(bad_file)]))
        jsonschema.validate(log, schema)

    def test_empty_findings_still_valid(self):
        log = to_sarif([])
        assert log["runs"][0]["results"] == []


# ----------------------------------------------------------------------
# fingerprint v2 + baseline migration
# ----------------------------------------------------------------------


class TestFingerprintV2:
    def test_distinguishes_same_snippet_in_different_functions(self):
        a = Finding("NBL001", "m.py", 3, "msg", snippet="x()", function="f")
        b = Finding("NBL001", "m.py", 9, "msg", snippet="x()", function="g")
        assert a.fingerprint != b.fingerprint
        assert a.legacy_fingerprint == b.legacy_fingerprint

    def test_survives_whitespace_reformat(self):
        a = Finding("NBL001", "m.py", 3, "m", snippet="x = f( 1,  2 )")
        b = Finding("NBL001", "m.py", 7, "m", snippet="x = f( 1, 2 )")
        assert a.fingerprint == b.fingerprint

    def test_function_not_in_json_payload(self):
        finding = Finding("NBL001", "m.py", 3, "m", function="f")
        assert "function" not in finding.to_dict()


class TestBaselineMigration:
    def _findings(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text(BAD_SOURCE)
        return analyze_paths([str(path)])

    def test_v2_roundtrip(self, tmp_path):
        findings = self._findings(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), findings)
        payload = json.loads(baseline_path.read_text())
        assert payload["version"] == BASELINE_VERSION == 2
        assert apply_baseline(findings, load_baseline(str(baseline_path))) == []

    def test_v1_baseline_still_suppresses(self, tmp_path):
        findings = self._findings(tmp_path)
        legacy = {
            "version": 1,
            "tool": "nebula-lint",
            "fingerprints": {f.legacy_fingerprint: 1 for f in findings},
        }
        baseline_path = tmp_path / "v1.json"
        baseline_path.write_text(json.dumps(legacy))
        assert apply_baseline(findings, load_baseline(str(baseline_path))) == []

    def test_rewrite_migrates_v1_to_v2(self, tmp_path):
        findings = self._findings(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        out = io.StringIO()
        assert (
            lint_main(
                [
                    str(tmp_path / "bad.py"),
                    "--write-baseline",
                    str(baseline_path),
                ],
                out=out,
            )
            == 0
        )
        payload = json.loads(baseline_path.read_text())
        assert payload["version"] == 2
        assert set(payload["fingerprints"]) == {
            f.fingerprint for f in findings
        }


# ----------------------------------------------------------------------
# --verbose / --max-seconds / --jobs
# ----------------------------------------------------------------------


class TestRuntimeKnobs:
    def test_verbose_prints_phase_timings(self, bad_file, capsys):
        out = io.StringIO()
        lint_main([str(bad_file), "--verbose"], out=out)
        err = capsys.readouterr().err
        for phase in ("parse", "project", "rules", "total"):
            assert phase in err

    def test_max_seconds_budget_violation_exits_2(self, bad_file):
        out = io.StringIO()
        assert lint_main([str(bad_file), "--max-seconds", "0"], out=out) == 2

    def test_max_seconds_generous_budget_passes(self, bad_file):
        out = io.StringIO()
        assert lint_main([str(bad_file), "--max-seconds", "300"], out=out) == 1

    def test_explicit_jobs_accepted(self, bad_file):
        out = io.StringIO()
        assert lint_main([str(bad_file), "--jobs", "2"], out=out) == 1
