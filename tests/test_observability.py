"""Unit + integration tests for repro.observability (tracing PR).

Covers span nesting, JSONL export round-trips, histogram bucket edges,
the no-op tracer's zero-side-effect guarantee, registry snapshots, and
the end-to-end trace shape of a traced ingestion.
"""

import json

import pytest

from repro import NebulaConfig, Nebula, generate_bio_database
from repro.datagen.biodb import BioDatabaseSpec
from repro.observability import (
    NOOP_TRACER,
    Counter,
    Gauge,
    Histogram,
    JsonlExporter,
    MetricsRegistry,
    NoopTracer,
    RingBufferExporter,
    SqlProfiler,
    Tracer,
    encode_key,
    format_trace,
    non_zero_counters,
    read_jsonl_traces,
    set_metrics,
    span_names,
    validate_trace_file,
)
from repro.observability.profiling import OVERFLOW_KEY


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------


class TestTracer:
    def test_span_nesting(self):
        ring = RingBufferExporter()
        tracer = Tracer([ring])
        with tracer.span("root") as root:
            root.set_attribute("id", 7)
            with tracer.span("child1"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child2") as child2:
                child2.set_attribute("rows", 3)
        (trace,) = ring.last(1)
        assert span_names(trace) == ["root", "child1", "grandchild", "child2"]
        assert trace["attributes"] == {"id": 7}
        assert trace["children"][1]["attributes"] == {"rows": 3}
        assert trace["duration_ms"] >= 0.0
        assert "timestamp" in trace
        assert tracer.depth == 0
        assert tracer.last_trace is trace

    def test_only_root_span_exports(self):
        ring = RingBufferExporter()
        tracer = Tracer([ring])
        with tracer.span("root"):
            with tracer.span("inner"):
                pass
            assert len(ring) == 0  # inner close must not export
        assert len(ring) == 1

    def test_exception_recorded_and_reraised(self):
        ring = RingBufferExporter()
        tracer = Tracer([ring])
        with pytest.raises(ValueError):
            with tracer.span("root"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        (trace,) = ring.last(1)
        assert "boom" in trace["children"][0]["attributes"]["error"]
        assert tracer.depth == 0  # stack fully unwound

    def test_broken_exporter_does_not_sink_the_span(self):
        class Broken:
            def export(self, record):
                raise RuntimeError("exporter down")

        ring = RingBufferExporter()
        tracer = Tracer([Broken(), ring])
        with tracer.span("root"):
            pass
        assert len(ring) == 1  # later exporters still ran

    def test_ring_buffer_capacity_and_order(self):
        ring = RingBufferExporter(capacity=2)
        tracer = Tracer([ring])
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        assert [t["name"] for t in ring.last(5)] == ["b", "c"]
        assert ring.last(0) == []


class TestNoopTracer:
    def test_zero_side_effects(self):
        tracer = NoopTracer()
        span = tracer.span("anything")
        with span as inner:
            inner.set_attribute("ignored", 1)
        assert tracer.span("x") is tracer.span("y")  # shared singleton
        assert tracer.last_trace is None
        assert tracer.depth == 0
        assert not tracer.enabled
        assert not NOOP_TRACER.enabled

    def test_exceptions_propagate(self):
        with pytest.raises(RuntimeError):
            with NOOP_TRACER.span("x"):
                raise RuntimeError("boom")


class TestJsonlRoundTrip:
    def test_export_and_read_back(self, tmp_path):
        path = str(tmp_path / "sub" / "traces.jsonl")
        tracer = Tracer([JsonlExporter(path)])
        for i in range(3):
            with tracer.span(f"root{i}") as root:
                root.set_attribute("i", i)
                with tracer.span("child"):
                    pass
        traces = read_jsonl_traces(path)
        assert [t["name"] for t in traces] == ["root0", "root1", "root2"]
        assert traces[2]["attributes"] == {"i": 2}
        assert validate_trace_file(path, minimum=3)

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "ok", "children": []}\nnot json\n')
        with pytest.raises(ValueError, match="malformed"):
            read_jsonl_traces(str(path))

    def test_record_missing_name_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"no_name": true}\n')
        with pytest.raises(ValueError, match="missing 'name'"):
            read_jsonl_traces(str(path))

    def test_validate_rejects_missing_empty_and_flat(self, tmp_path):
        with pytest.raises(ValueError, match="does not exist"):
            validate_trace_file(str(tmp_path / "nope.jsonl"))
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="expected >="):
            validate_trace_file(str(empty))
        flat = tmp_path / "flat.jsonl"
        flat.write_text(json.dumps({"name": "root", "children": []}) + "\n")
        with pytest.raises(ValueError, match="no nested spans"):
            validate_trace_file(str(flat))

    def test_format_trace_renders_the_tree(self):
        record = {
            "name": "root",
            "duration_ms": 1.5,
            "attributes": {"id": 1},
            "children": [
                {"name": "child", "duration_ms": 0.5, "attributes": {}, "children": []}
            ],
        }
        lines = format_trace(record)
        assert lines[0] == "root  1.5ms  [id=1]"
        assert lines[1] == "  child  0.5ms"


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


class TestInstruments:
    def test_counter_is_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 4

    def test_histogram_bucket_edges(self):
        histogram = Histogram((1, 2, 5))
        for value in (0.5, 1.0, 1.001, 2.0, 5.0, 5.001):
            histogram.observe(value)
        # le semantics: a value equal to a bound lands in that bucket.
        assert histogram.bucket_counts() == {
            "1.0": 2,   # 0.5, 1.0
            "2.0": 2,   # 1.001, 2.0
            "5.0": 1,   # 5.0
            "+Inf": 1,  # 5.001
        }
        assert histogram.count == 6
        assert histogram.sum == pytest.approx(14.502)
        assert histogram.mean == pytest.approx(14.502 / 6)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((1, 1))
        with pytest.raises(ValueError):
            Histogram((2, 1))

    def test_encode_key_is_canonical(self):
        assert encode_key("m") == "m"
        assert (
            encode_key("m", {"b": "2", "a": "1"})
            == 'm{a="1",b="2"}'
        )


class TestRegistry:
    def test_get_or_create_identity(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.counter("c", {"x": "1"}) is not registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h", (1, 2)) is registry.histogram("h", (1, 2))

    def test_snapshot_restore_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c", {"k": "v"}).inc(3)
        registry.gauge("g").set(7)
        registry.histogram("h", (1, 2)).observe(1.5)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot  # serializable

        restored = MetricsRegistry()
        restored.restore(snapshot)
        assert restored.snapshot() == snapshot
        restored.counter("c", {"k": "v"}).inc()
        assert restored.snapshot()["counters"]['c{k="v"}'] == 4

    def test_non_zero_counters_helper(self):
        registry = MetricsRegistry()
        registry.counter("zero")
        registry.counter("hit").inc()
        assert non_zero_counters(registry.snapshot()) == ["hit"]

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot()["counters"] == {}

    def test_set_metrics_swaps_the_default(self):
        from repro.observability import get_metrics

        mine = MetricsRegistry()
        previous = set_metrics(mine)
        try:
            assert get_metrics() is mine
        finally:
            set_metrics(previous)
        assert get_metrics() is previous


class TestSqlProfiler:
    def test_aggregates_per_statement(self):
        profiler = SqlProfiler()
        profiler.record("SELECT 1", 0.010, 5)
        profiler.record("SELECT 1", 0.020, 7)
        profiler.record("SELECT 2", 0.001, 1)
        (top,) = profiler.top(1)
        assert top.sql == "SELECT 1"
        assert top.calls == 2
        assert top.rows == 12
        assert top.total_seconds == pytest.approx(0.030)
        assert profiler.statement_count == 2
        assert profiler.total_calls == 3

    def test_overflow_collapses_into_other(self):
        profiler = SqlProfiler(max_statements=2)
        profiler.record("a", 0.001, 1)
        profiler.record("b", 0.001, 1)
        profiler.record("c", 0.001, 1)
        profiler.record("d", 0.001, 1)
        assert profiler.statement_count == 3  # a, b, <other>
        overflow = {p.sql: p for p in profiler.top(10)}[OVERFLOW_KEY]
        assert overflow.calls == 2


# ----------------------------------------------------------------------
# End-to-end: a traced ingestion
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def traced_setup(tmp_path_factory):
    db = generate_bio_database(
        BioDatabaseSpec(genes=30, proteins=18, publications=100, seed=13)
    )
    trace_path = str(tmp_path_factory.mktemp("traces") / "run.jsonl")
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    nebula = Nebula(
        db.connection,
        db.meta,
        NebulaConfig(epsilon=0.6, tracing=True, trace_path=trace_path),
        aliases=db.aliases,
    )
    genes, _ = db.community_members(0)
    report = nebula.insert_annotation(
        f"We looked into gene {genes[1].gid} during the assay.",
        attach_to=[db.resolve("gene", genes[0].gid)],
        author="alice",
    )
    set_metrics(previous)
    return db, nebula, report, trace_path


class TestTracedPipeline:
    def test_trace_tree_shape(self, traced_setup):
        _, _, report, _ = traced_setup
        assert report.trace is not None
        names = span_names(report.trace)
        assert names[0] == "insert_annotation"
        for expected in (
            "stage0.store",
            "analyze",
            "stage1.maps",
            "stage1.context",
            "stage1.queries",
            "stage2.execute",
            "stage3.curate",
        ):
            assert expected in names
        # analyze holds the stage1/stage2 spans as children.
        analyze = next(
            c for c in report.trace["children"] if c["name"] == "analyze"
        )
        assert {c["name"] for c in analyze["children"]} >= {
            "stage1.maps",
            "stage2.execute",
        }
        assert report.trace["attributes"]["annotation_id"] == report.annotation_id

    def test_trace_persisted_and_buffered(self, traced_setup):
        _, nebula, report, trace_path = traced_setup
        traces = validate_trace_file(trace_path)
        assert traces[-1]["attributes"]["annotation_id"] == report.annotation_id
        assert nebula.trace_buffer is not None
        assert nebula.trace_buffer.last(1)[0] == report.trace

    def test_metrics_snapshot_on_report(self, traced_setup):
        _, _, report, _ = traced_setup
        assert report.metrics is not None
        hits = non_zero_counters(report.metrics)
        for key in (
            "nebula_annotations_ingested_total",
            "nebula_queries_generated_total",
            "nebula_sql_statements_total",
            "nebula_tuples_scored_total",
        ):
            assert key in hits

    def test_sql_profiler_saw_the_statements(self, traced_setup):
        _, nebula, _, _ = traced_setup
        assert nebula.engine.profiler.total_calls >= 1
        assert nebula.engine.profiler.top(1)[0].calls >= 1

    def test_nested_analyze_does_not_export_its_own_trace(self, traced_setup):
        _, nebula, _, trace_path = traced_setup
        before = len(read_jsonl_traces(trace_path))
        report = nebula.analyze("gene JW0001 mentioned here")
        after = read_jsonl_traces(trace_path)
        # The standalone analyze IS a root: exactly one new trace.
        assert len(after) == before + 1
        assert after[-1]["name"] == "analyze"
        assert report.trace == after[-1]


class TestDisabledByDefault:
    def test_default_engine_has_no_trace(self):
        db = generate_bio_database(
            BioDatabaseSpec(genes=20, proteins=12, publications=60, seed=5)
        )
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            nebula = Nebula(
                db.connection, db.meta, NebulaConfig(epsilon=0.6),
                aliases=db.aliases,
            )
            assert nebula.tracer is NOOP_TRACER
            assert nebula.trace_buffer is None
            genes, _ = db.community_members(0)
            report = nebula.insert_annotation(
                f"gene {genes[1].gid} discussed.",
                attach_to=[db.resolve("gene", genes[0].gid)],
            )
            assert report.trace is None
            assert report.metrics is None
            # Metrics still flow (they are always-on and cheap).
            assert "nebula_annotations_ingested_total" in non_zero_counters(
                registry.snapshot()
            )
        finally:
            set_metrics(previous)
