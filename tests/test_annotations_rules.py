"""Unit tests for predicate-based annotation rules."""

import pytest

from repro.annotations.engine import AnnotationManager
from repro.annotations.rules import RuleEngine
from repro.errors import CommandError, StorageError
from repro.types import CellRef, TupleRef

from conftest import build_figure1_connection


@pytest.fixture
def world():
    connection = build_figure1_connection()
    manager = AnnotationManager(connection)
    engine = RuleEngine(manager)
    annotation = manager.add_annotation("flag for F1 members")
    return connection, manager, engine, annotation


class TestRuleCreation:
    def test_retroactive_application(self, world):
        connection, manager, engine, annotation = world
        rule, attached = engine.create_rule(
            annotation.annotation_id, "Gene", "Family = 'F1'"
        )
        assert attached == 4
        assert len(manager.focal_of(annotation.annotation_id)) == 4

    def test_without_retroactive_application(self, world):
        connection, manager, engine, annotation = world
        _, attached = engine.create_rule(
            annotation.annotation_id, "Gene", "Family = 'F1'",
            apply_retroactively=False,
        )
        assert attached == 0
        assert manager.focal_of(annotation.annotation_id) == ()

    def test_column_scoped_rule(self, world):
        connection, manager, engine, annotation = world
        rule, _ = engine.create_rule(
            annotation.annotation_id, "Gene", "Family = 'F1'", column="Family"
        )
        assert rule.column == "Family"
        attachments = manager.store.attachments_of(annotation.annotation_id)
        assert all(a.column == "Family" for a in attachments)

    def test_invalid_predicate_rejected(self, world):
        connection, manager, engine, annotation = world
        with pytest.raises(CommandError):
            engine.create_rule(annotation.annotation_id, "Gene", "NoSuchCol = 1")

    def test_injection_shape_rejected(self, world):
        connection, manager, engine, annotation = world
        with pytest.raises(CommandError):
            engine.create_rule(
                annotation.annotation_id, "Gene", "1=1; DROP TABLE Gene"
            )

    def test_rules_listing(self, world):
        connection, manager, engine, annotation = world
        engine.create_rule(annotation.annotation_id, "Gene", "Family = 'F1'")
        engine.create_rule(annotation.annotation_id, "Protein", "Mass > 50")
        assert len(engine.rules()) == 2
        assert len(engine.rules(table="Gene")) == 1


class TestRuleApplication:
    def test_new_tuple_fires_rule(self, world):
        connection, manager, engine, annotation = world
        engine.create_rule(annotation.annotation_id, "Gene", "Family = 'F1'")
        cursor = connection.execute(
            "INSERT INTO Gene VALUES ('JW0099', 'newG', 500, 'ACGT', 'F1')"
        )
        fired = engine.process_new_tuple(TupleRef("Gene", cursor.lastrowid))
        assert len(fired) == 1
        assert TupleRef("Gene", cursor.lastrowid) in manager.focal_of(
            annotation.annotation_id
        )

    def test_new_tuple_not_matching(self, world):
        connection, manager, engine, annotation = world
        engine.create_rule(annotation.annotation_id, "Gene", "Family = 'F1'")
        cursor = connection.execute(
            "INSERT INTO Gene VALUES ('JW0098', 'othG', 500, 'ACGT', 'F9')"
        )
        assert engine.process_new_tuple(TupleRef("Gene", cursor.lastrowid)) == []

    def test_deactivated_rule_does_not_fire(self, world):
        connection, manager, engine, annotation = world
        rule, _ = engine.create_rule(
            annotation.annotation_id, "Gene", "Family = 'F1'"
        )
        engine.deactivate(rule.rule_id)
        cursor = connection.execute(
            "INSERT INTO Gene VALUES ('JW0097', 'thrG', 500, 'ACGT', 'F1')"
        )
        assert engine.process_new_tuple(TupleRef("Gene", cursor.lastrowid)) == []

    def test_deactivate_unknown(self, world):
        *_, engine, _ = (world[0], world[1], world[2], world[3])
        with pytest.raises(StorageError):
            engine.deactivate(999)

    def test_sweep_is_idempotent(self, world):
        connection, manager, engine, annotation = world
        engine.create_rule(annotation.annotation_id, "Gene", "Family = 'F1'")
        before = manager.store.count_attachments()
        engine.sweep()
        assert manager.store.count_attachments() == before

    def test_sweep_catches_missed_tuples(self, world):
        connection, manager, engine, annotation = world
        engine.create_rule(annotation.annotation_id, "Gene", "Family = 'F1'")
        connection.execute(
            "INSERT INTO Gene VALUES ('JW0096', 'fouG', 500, 'ACGT', 'F1')"
        )
        created = engine.sweep(table="Gene")
        assert created == 1
