"""Unit tests for the BoundsSetting adaptive tuning algorithm."""

import pytest

from repro.core.bounds import BoundsChoice, BoundsSetting, TrainingSample
from repro.types import ScoredTuple, TupleRef


def _t(i: int) -> TupleRef:
    return TupleRef("Gene", i)


def _sample(candidate_pairs, ideal_indices, focal_indices):
    return TrainingSample(
        candidates=tuple(ScoredTuple(_t(i), c, ()) for i, c in candidate_pairs),
        ideal=frozenset(_t(i) for i in ideal_indices),
        focal=tuple(_t(i) for i in focal_indices),
    )


@pytest.fixture
def clean_samples():
    """True links score high, junk scores low — cleanly separable."""
    return [
        _sample([(2, 0.95), (3, 0.92), (50, 0.15)], [1, 2, 3], [1]),
        _sample([(5, 0.90), (51, 0.20)], [4, 5], [4]),
        _sample([(7, 0.97), (8, 0.94), (52, 0.10)], [6, 7, 8], [6]),
    ]


@pytest.fixture
def noisy_samples():
    """True and junk overlap in the middle band — experts are needed."""
    return [
        _sample([(2, 0.95), (3, 0.55), (50, 0.60), (51, 0.15)], [1, 2, 3], [1]),
        _sample([(5, 0.50), (52, 0.45), (53, 0.1)], [4, 5], [4]),
        _sample([(7, 0.9), (8, 0.58), (54, 0.52)], [6, 7, 8], [6]),
    ]


class TestTune:
    def test_clean_world_needs_no_expert(self, clean_samples):
        choice = BoundsSetting(fn_limit=0.05, fp_limit=0.05).tune(clean_samples)
        assert choice.assessment.m_f == 0
        assert choice.assessment.f_n <= 0.05
        assert choice.assessment.f_p <= 0.05

    def test_noisy_world_keeps_expert_band(self, noisy_samples):
        choice = BoundsSetting(fn_limit=0.05, fp_limit=0.05).tune(noisy_samples)
        # Separating the overlapping 0.45-0.60 band automatically would
        # violate one of the limits: the tuner must keep a pending band.
        assert choice.beta_lower < choice.beta_upper
        assert choice.assessment.f_n <= 0.05
        assert choice.assessment.f_p <= 0.05
        assert choice.assessment.m_f > 0

    def test_infeasible_limits_degrade_gracefully(self, noisy_samples):
        grid = [(0.5, 0.5)]  # single degenerate setting, limits unreachable
        choice = BoundsSetting(fn_limit=0.0, fp_limit=0.0, grid=grid).tune(
            noisy_samples
        )
        assert (choice.beta_lower, choice.beta_upper) == (0.5, 0.5)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            BoundsSetting().tune([])

    def test_sweep_covers_grid(self, clean_samples):
        grid = [(0.2, 0.8), (0.3, 0.9)]
        setting = BoundsSetting(grid=grid)
        choices = setting.sweep(clean_samples)
        assert [(c.beta_lower, c.beta_upper) for c in choices] == grid

    def test_evaluate_matches_manual_assessment(self, clean_samples):
        setting = BoundsSetting()
        averaged = setting.evaluate(clean_samples, 0.32, 0.86)
        assert averaged.f_n == pytest.approx(0.0)
        assert averaged.f_p == pytest.approx(0.0)


class TestMhRefinement:
    def test_refinement_lowers_upper_bound(self):
        # All pending predictions are true: M_H = 1, so the upper bound
        # can safely move left until the pending band is empty.
        samples = [
            _sample([(2, 0.7), (3, 0.75)], [1, 2, 3], [1]),
            _sample([(5, 0.72)], [4, 5], [4]),
        ]
        with_refinement = BoundsSetting(
            fn_limit=0.1, fp_limit=0.1, mh_refinement=True
        ).tune(samples)
        without = BoundsSetting(
            fn_limit=0.1, fp_limit=0.1, mh_refinement=False
        ).tune(samples)
        assert with_refinement.beta_upper <= without.beta_upper
        assert with_refinement.assessment.m_f <= without.assessment.m_f

    def test_refinement_never_crosses_lower_bound(self, noisy_samples):
        choice = BoundsSetting(mh_refinement=True).tune(noisy_samples)
        assert choice.beta_lower < choice.beta_upper or choice.assessment.m_f == 0
