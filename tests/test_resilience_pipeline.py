"""Fault-boundary tests for the ingestion pipeline: savepoint rollback,
graceful degradation, and the dead-letter queue (ISSUE PR 1)."""

import sqlite3

import pytest

from repro import Nebula, NebulaConfig, generate_bio_database
from repro.datagen.biodb import BioDatabaseSpec
from repro.errors import DeadLetterError, PipelineStageError, TransientStorageError
from repro.observability import MetricsRegistry, set_metrics
from repro.resilience import (
    CONTEXT_FALLBACK,
    EXECUTOR_FALLBACK,
    MINI_DROP_LEAK,
    SPREADING_FALLBACK,
    DeadLetterQueue,
    FaultInjector,
    InjectedFault,
    RetryPolicy,
)
from repro.types import TupleRef


@pytest.fixture()
def db():
    return generate_bio_database(
        BioDatabaseSpec(genes=30, proteins=18, publications=100, seed=11)
    )


@pytest.fixture()
def faults():
    return FaultInjector()


@pytest.fixture()
def metrics():
    """Isolated default registry: the resilience layer's module-level
    counters land here instead of polluting (or reading) global state."""
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


@pytest.fixture()
def nebula(db, faults, metrics):
    config = NebulaConfig(epsilon=0.6, fault_injector=faults)
    return Nebula(db.connection, db.meta, config, aliases=db.aliases)


def snapshot(nebula):
    """Every count a failed ingestion must leave untouched."""
    return {
        "annotations": nebula.manager.store.count_annotations(),
        "attachments": nebula.manager.store.count_attachments(),
        "acg_nodes": nebula.acg.node_count,
        "acg_edges": nebula.acg.edge_count,
        "tasks": nebula.connection.execute(
            "SELECT COUNT(*) FROM _nebula_verification_tasks"
        ).fetchone()[0],
    }


def sample_insert(db, nebula, **kwargs):
    genes, _ = db.community_members(0)
    return nebula.insert_annotation(
        f"We looked into gene {genes[1].gid} during the assay.",
        attach_to=[db.resolve("gene", genes[0].gid)],
        author="alice",
        **kwargs,
    )


class TestRollback:
    @pytest.mark.parametrize("point", ["store.add", "queue.triage"])
    def test_fault_rolls_back_stage0_completely(self, db, nebula, faults, point):
        before = snapshot(nebula)
        faults.arm(point)
        with pytest.raises(PipelineStageError) as exc_info:
            sample_insert(db, nebula)
        assert exc_info.value.stage == point
        assert isinstance(exc_info.value.original, InjectedFault)
        assert snapshot(nebula) == before

    def test_rollback_restores_hop_profile(self, db, nebula, faults):
        nebula.profile.record(2)
        nebula.profile.record(-1)  # unreachable
        buckets_before = dict(nebula.profile.buckets)
        unreachable_before = nebula.profile.unreachable
        faults.arm("queue.triage")
        with pytest.raises(PipelineStageError):
            sample_insert(db, nebula)
        assert nebula.profile.buckets == buckets_before
        assert nebula.profile.unreachable == unreachable_before

    def test_rollback_leaves_stability_tracker_untouched(self, db, nebula, faults):
        history_before = list(nebula.stability.history)
        batch_before = nebula.stability._batch_annotations
        faults.arm("queue.triage")
        with pytest.raises(PipelineStageError):
            sample_insert(db, nebula)
        assert nebula.stability.history == history_before
        assert nebula.stability._batch_annotations == batch_before

    def test_pipeline_recovers_after_transient_fault(self, db, nebula, faults):
        faults.arm("store.add")
        with pytest.raises(PipelineStageError):
            sample_insert(db, nebula)
        # The fault auto-cleared (times=1): the same insert now succeeds.
        report = sample_insert(db, nebula, capture_dead_letter=False)
        assert report.annotation_id is not None
        annotation = nebula.manager.annotation(report.annotation_id)
        assert "gene" in annotation.content


class TestDegradation:
    def test_spreading_fault_falls_back_to_full_search(self, db, nebula, faults):
        faults.arm("spreading.scope")
        report = sample_insert(db, nebula, use_spreading=True, radius=2)
        assert SPREADING_FALLBACK in report.degradations
        assert report.mode == "full"
        assert report.radius is None
        assert report.annotation_id is not None  # ingestion still succeeded

    def test_executor_fault_falls_back_to_sequential(self, db, nebula, faults):
        genes, _ = db.community_members(1)
        text = f"We examined gene {genes[0].gid} and gene {genes[1].gid}."
        clean = nebula.analyze(text, shared=True)
        assert clean.degradations == []
        faults.arm("executor.run")
        degraded = nebula.analyze(text, shared=True)
        assert degraded.degradations == [EXECUTOR_FALLBACK]
        # The fallback is an equivalence: same identified tuples.
        assert degraded.identified.refs == clean.identified.refs

    def test_context_adjust_fault_uses_unadjusted_weights(
        self, db, nebula, monkeypatch
    ):
        def broken(context_map, config):
            raise RuntimeError("adjustment exploded")

        monkeypatch.setattr(
            "repro.core.query_generation.adjust_context_weights", broken
        )
        report = nebula.analyze(f"gene {db.genes[3].gid} mentioned.")
        assert CONTEXT_FALLBACK in report.degradations
        assert report.generation.queries  # still searched something

    def test_mini_drop_fault_leaks_but_does_not_mask(self, db, nebula, monkeypatch):
        genes, _ = db.community_members(0)
        monkeypatch.setattr(
            "repro.core.spreading.MiniDatabase.drop",
            lambda self: (_ for _ in ()).throw(RuntimeError("drop failed")),
        )
        report = nebula.analyze(
            f"gene {genes[1].gid}.",
            focal=[db.resolve("gene", genes[0].gid)],
            use_spreading=True,
            radius=2,
        )
        assert report.mode == "spreading"
        assert MINI_DROP_LEAK in report.degradations

    def test_clean_run_has_no_degradations(self, db, nebula):
        report = sample_insert(db, nebula)
        assert report.degradations == []


class TestDeadLetters:
    def test_fault_captures_dead_letter(self, db, nebula, faults):
        faults.arm("queue.triage")
        with pytest.raises(PipelineStageError) as exc_info:
            sample_insert(db, nebula)
        letter_id = exc_info.value.dead_letter_id
        assert letter_id is not None
        letter = nebula.dead_letters.get(letter_id)
        assert letter.is_pending
        assert letter.stage == "queue.triage"
        assert letter.author == "alice"
        assert "gene" in letter.content
        assert letter.focal == (db.resolve("gene", db.community_members(0)[0][0].gid),)
        assert "InjectedFault" in letter.error

    def test_reprocess_replays_and_resolves(self, db, nebula, faults):
        before = snapshot(nebula)
        faults.arm("store.add")
        with pytest.raises(PipelineStageError):
            sample_insert(db, nebula)
        assert snapshot(nebula) == before
        assert nebula.dead_letters.count("pending") == 1

        reports = nebula.reprocess_dead_letters()
        assert len(reports) == 1
        assert reports[0].annotation_id is not None
        assert nebula.dead_letters.count("pending") == 0
        assert nebula.dead_letters.count("resolved") == 1
        # The replay really persisted the annotation with its focal.
        annotation = nebula.manager.annotation(reports[0].annotation_id)
        assert "gene" in annotation.content
        assert nebula.manager.store.count_annotations() == before["annotations"] + 1

    def test_failed_reprocess_bumps_attempts_without_new_letter(
        self, db, nebula, faults
    ):
        faults.arm("queue.triage", times=2)
        with pytest.raises(PipelineStageError):
            sample_insert(db, nebula)
        assert nebula.dead_letters.count() == 1

        reports = nebula.reprocess_dead_letters()  # second arming fires here
        assert reports == []
        assert nebula.dead_letters.count() == 1  # no letter about the letter
        (letter,) = nebula.dead_letters.pending()
        assert letter.attempts == 2

    def test_capture_can_be_disabled(self, db, faults):
        fresh = generate_bio_database(
            BioDatabaseSpec(genes=20, proteins=12, publications=60, seed=3)
        )
        config = NebulaConfig(
            epsilon=0.6, fault_injector=faults, dead_letters=False
        )
        nebula = Nebula(fresh.connection, fresh.meta, config, aliases=fresh.aliases)
        faults.arm("store.add")
        with pytest.raises(PipelineStageError) as exc_info:
            sample_insert(fresh, nebula)
        assert exc_info.value.dead_letter_id is None
        assert nebula.dead_letters.count() == 0

    def test_queue_unit_behaviour(self, db):
        queue = DeadLetterQueue(db.connection)
        letter = queue.capture(
            "text", (TupleRef("Gene", 1),), None, "store.add", "boom"
        )
        assert queue.get(letter.letter_id).focal == (TupleRef("Gene", 1),)
        queue.record_attempt(letter.letter_id, "boom again")
        assert queue.get(letter.letter_id).attempts == 2
        assert queue.get(letter.letter_id).error == "boom again"
        queue.mark_resolved(letter.letter_id)
        with pytest.raises(DeadLetterError):
            queue.mark_resolved(letter.letter_id)  # already resolved
        with pytest.raises(DeadLetterError):
            queue.record_attempt(letter.letter_id, "late")
        with pytest.raises(DeadLetterError):
            queue.get(9999)

    def test_claim_is_an_atomic_compare_and_set(self, db):
        queue = DeadLetterQueue(db.connection)
        letter = queue.capture(
            "text", (TupleRef("Gene", 1),), None, "store.add", "boom"
        )
        assert queue.claim(letter.letter_id) is True
        assert queue.claim(letter.letter_id) is False  # already claimed
        assert queue.pending(include_claimed=False) == []
        assert len(queue.pending()) == 1  # still pending, just claimed
        assert queue.release_claims() == 1
        assert queue.claim(letter.letter_id) is True
        queue.mark_resolved(letter.letter_id)
        assert queue.claim(letter.letter_id) is False  # resolved: unclaimable

    def test_record_attempt_releases_the_claim(self, db):
        queue = DeadLetterQueue(db.connection)
        letter = queue.capture(
            "text", (TupleRef("Gene", 1),), None, "store.add", "boom"
        )
        assert queue.claim(letter.letter_id)
        queue.record_attempt(letter.letter_id, "failed again")
        # A failed replay leaves the letter claimable by the next pass.
        assert queue.claim(letter.letter_id)

    def test_reprocess_is_idempotent_under_repeated_invocation(
        self, db, nebula, faults, metrics
    ):
        """Regression: a replayed letter must be ingested exactly once,
        even when reprocess_dead_letters runs again (or concurrently)."""
        before = snapshot(nebula)
        faults.arm("queue.triage")
        with pytest.raises(PipelineStageError):
            sample_insert(db, nebula)
        assert nebula.dead_letters.count("pending") == 1

        first = nebula.reprocess_dead_letters()
        second = nebula.reprocess_dead_letters()
        assert len(first) == 1
        assert second == []
        assert (
            nebula.manager.store.count_annotations() == before["annotations"] + 1
        )
        assert (
            metrics.counter("nebula_dead_letter_replayed_total").value == 1
        )

    def test_reprocess_skips_letters_claimed_by_another_replayer(
        self, db, nebula, faults
    ):
        faults.arm("queue.triage")
        with pytest.raises(PipelineStageError):
            sample_insert(db, nebula)
        (letter,) = nebula.dead_letters.pending()
        # Another replayer (another process, a service recovery) holds it.
        assert nebula.dead_letters.claim(letter.letter_id)
        assert nebula.reprocess_dead_letters() == []
        assert nebula.dead_letters.count("pending") == 1
        # Once the claim is released the letter replays normally.
        nebula.dead_letters.release_claims()
        assert len(nebula.reprocess_dead_letters()) == 1

    def test_claim_column_migrates_onto_old_tables(self, tmp_path):
        """A database created before the claim protocol (no ``claimed``
        column) upgrades in place on open."""
        import sqlite3

        path = tmp_path / "old.db"
        old = sqlite3.connect(path)
        old.execute(
            """
            CREATE TABLE _nebula_dead_letters (
                letter_id   INTEGER PRIMARY KEY,
                content     TEXT NOT NULL,
                author      TEXT,
                focal_json  TEXT NOT NULL,
                stage       TEXT NOT NULL,
                error       TEXT NOT NULL,
                attempts    INTEGER NOT NULL DEFAULT 1,
                status      TEXT NOT NULL DEFAULT 'pending'
                    CHECK (status IN ('pending', 'resolved'))
            )
            """
        )
        old.execute(
            "INSERT INTO _nebula_dead_letters "
            "(content, focal_json, stage, error) "
            "VALUES ('legacy', '[]', 'store.add', 'boom')"
        )
        old.commit()
        old.close()

        reopened = sqlite3.connect(path)
        queue = DeadLetterQueue(reopened)
        (letter,) = queue.pending(include_claimed=False)
        assert letter.content == "legacy"
        assert queue.claim(letter.letter_id)
        assert queue.pending(include_claimed=False) == []
        reopened.close()

    def test_capture_survives_process_exit(self, tmp_path):
        """A letter captured by a crashing process must already be durable:
        closing the connection without commit() must not lose it."""
        import sqlite3

        path = tmp_path / "curated.db"
        connection = sqlite3.connect(path)
        queue = DeadLetterQueue(connection)
        queue.capture("text", (TupleRef("Gene", 1),), "alice", "store.add", "boom")
        connection.close()  # no commit — simulates the failing process dying

        reopened = sqlite3.connect(path)
        letters = DeadLetterQueue(reopened).pending()
        assert len(letters) == 1
        assert letters[0].stage == "store.add"


class TestResilienceMetrics:
    """Every fault point publishes its events to the metrics registry."""

    def counter(self, metrics, key):
        return metrics.snapshot()["counters"].get(key, 0.0)

    def test_retry_attempts_are_counted(self, metrics):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise sqlite3.OperationalError("database is locked")
            return "ok"

        policy = RetryPolicy(max_attempts=3, sleep=lambda _: None)
        assert policy.run(flaky) == "ok"
        assert self.counter(metrics, "nebula_retry_attempts_total") == 2
        assert self.counter(metrics, "nebula_transient_errors_total") == 0

    def test_exhausted_retries_count_a_transient_error(self, metrics):
        def always_locked():
            raise sqlite3.OperationalError("database is locked")

        policy = RetryPolicy(max_attempts=2, sleep=lambda _: None)
        with pytest.raises(TransientStorageError):
            policy.run(always_locked)
        assert self.counter(metrics, "nebula_retry_attempts_total") == 1
        assert self.counter(metrics, "nebula_transient_errors_total") == 1

    def test_degradation_events_counted_per_label(self, db, nebula, faults, metrics):
        faults.arm("spreading.scope")
        report = sample_insert(db, nebula, use_spreading=True, radius=2)
        assert SPREADING_FALLBACK in report.degradations
        key = f'nebula_degradation_events_total{{fallback="{SPREADING_FALLBACK}"}}'
        assert self.counter(metrics, key) == 1

    def test_dead_letter_counter_and_pending_gauge(self, db, nebula, faults, metrics):
        faults.arm("queue.triage")
        with pytest.raises(PipelineStageError):
            sample_insert(db, nebula)
        key = 'nebula_dead_letters_total{stage="queue.triage"}'
        assert self.counter(metrics, key) == 1
        assert metrics.snapshot()["gauges"]["nebula_dead_letters_pending"] == 1
        stage_key = 'nebula_stage_failures_total{stage="queue.triage"}'
        assert self.counter(metrics, stage_key) == 1

        # Resolving the letter (fault auto-cleared) moves the gauge back.
        reports = nebula.reprocess_dead_letters()
        assert len(reports) == 1
        assert metrics.snapshot()["gauges"]["nebula_dead_letters_pending"] == 0
        assert self.counter(metrics, key) == 1  # capture count is monotonic


class TestStabilityInputs:
    def test_tracker_sees_focal_plus_accepted_and_edge_delta(self, db):
        """Regression for the edge-delta simplification: the tracker must
        receive M = |focal| + auto-accepted and N = the ACG edge delta
        across the whole pipeline (satellite 2)."""
        config = NebulaConfig(epsilon=0.6, batch_size=1)
        nebula = Nebula(db.connection, db.meta, config, aliases=db.aliases)
        genes, _ = db.community_members(2)
        focal = [
            db.resolve("gene", genes[0].gid),
            db.resolve("gene", genes[1].gid),
        ]
        edges_before = nebula.acg.edge_count
        report = nebula.insert_annotation(
            f"Findings about gene {genes[2].gid} in this community.",
            attach_to=focal,
        )
        accepted = sum(1 for t in report.tasks if t.decision.is_accepted)
        assert nebula.stability.history, "batch_size=1 must close a batch"
        attachments, new_edges, _ = nebula.stability.history[-1]
        assert attachments == len(focal) + accepted
        assert new_edges == nebula.acg.edge_count - edges_before
