"""Unit tests for SQL identifier quoting (repro.utils.sql)."""

import pytest

from repro.errors import StorageError
from repro.utils.sql import MAX_IDENTIFIER_LENGTH, quote_identifier, quote_qualified


class TestQuoteIdentifier:
    def test_plain_name(self):
        assert quote_identifier("Gene") == '"Gene"'

    def test_embedded_quote_doubled(self):
        assert quote_identifier('weird"name') == '"weird""name"'

    def test_multiple_quotes(self):
        assert quote_identifier('a"b"c') == '"a""b""c"'

    def test_spaces_and_keywords_survive(self):
        assert quote_identifier("order by") == '"order by"'
        assert quote_identifier("select") == '"select"'

    def test_rejects_empty(self):
        with pytest.raises(StorageError):
            quote_identifier("")

    def test_rejects_nul_byte(self):
        with pytest.raises(StorageError):
            quote_identifier("bad\x00name")

    def test_rejects_over_length(self):
        with pytest.raises(StorageError):
            quote_identifier("x" * (MAX_IDENTIFIER_LENGTH + 1))

    def test_rejects_non_string(self):
        with pytest.raises(StorageError):
            quote_identifier(42)  # type: ignore[arg-type]

    def test_sqlite_round_trip(self):
        import sqlite3

        connection = sqlite3.connect(":memory:")
        nasty = 'tab"le with spaces'
        connection.execute(f"CREATE TABLE {quote_identifier(nasty)} (x INTEGER)")
        connection.execute(f"INSERT INTO {quote_identifier(nasty)} VALUES (7)")
        rows = connection.execute(
            f"SELECT x FROM {quote_identifier(nasty)}"
        ).fetchall()
        assert rows == [(7,)]
        connection.close()


class TestQuoteQualified:
    def test_qualified(self):
        assert quote_qualified("Gene", "GID") == '"Gene"."GID"'

    def test_qualified_quotes_both_parts(self):
        assert quote_qualified('t"1', 'c"2') == '"t""1"."c""2"'
