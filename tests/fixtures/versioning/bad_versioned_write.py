"""NBL013 fixture: raw in-place writes against versioned head tables.

Every function here mutates ``_nebula_annotations`` or
``_nebula_attachments`` without going through the commit log — the
exact drift the rule exists to catch.  Linted as production code (the
``tests/fixtures/`` carve-out in ``_is_test_path``).
"""

_PROMOTE = (
    "UPDATE _nebula_attachments SET confidence = 1.0 "
    "WHERE attachment_id = ?"
)


def promote_in_place(conn, attachment_id):
    # nebula-lint: NBL013 expected — update bypasses the history append
    conn.execute(_PROMOTE, (attachment_id,))


def discard_in_place(conn, attachment_id):
    conn.execute(
        "DELETE FROM _nebula_attachments WHERE attachment_id = ?",
        (attachment_id,),
    )


def rewrite_annotation(conn, annotation_id, content):
    conn.execute(
        "UPDATE _nebula_annotations SET content = ? WHERE annotation_id = ?",
        (content, annotation_id),
    )


def clobber_annotation(conn, row):
    conn.execute(
        "INSERT OR REPLACE INTO _nebula_annotations "
        "(annotation_id, content, author, created_seq) VALUES (?, ?, ?, ?)",
        row,
    )
