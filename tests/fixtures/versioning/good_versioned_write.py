"""NBL013 clean twin: reads, plain inserts, and non-versioned writes.

Nothing here mutates a versioned head table in place, so the rule must
stay silent — including on the history *append* tables whose names
share the versioned prefix, and on operational tables like the
verification queue.
"""

_READ = (
    "SELECT annotation_id, content FROM _nebula_annotations "
    "WHERE annotation_id = ?"
)


def read_annotation(conn, annotation_id):
    return conn.execute(_READ, (annotation_id,)).fetchone()


def insert_head_row(conn, row):
    # Plain INSERT is legal: the store pairs it with a history append.
    conn.execute(
        "INSERT INTO _nebula_annotations "
        "(annotation_id, content, author, created_seq) VALUES (?, ?, ?, ?)",
        row,
    )


def append_history(conn, row):
    # The singular history table names must not match the head tables.
    conn.execute(
        "INSERT INTO _nebula_annotation_history "
        "(commit_id, annotation_id, op, content, author, created_seq) "
        "VALUES (?, ?, ?, ?, ?, ?)",
        row,
    )


def resolve_task(conn, task_id):
    # Operational state (not versioned) stays freely mutable.
    conn.execute(
        "UPDATE _nebula_verification_tasks SET status = 'verified' "
        "WHERE task_id = ?",
        (task_id,),
    )


def drop_dead_letter(conn, letter_id):
    conn.execute(
        "DELETE FROM _nebula_dead_letters WHERE letter_id = ?",
        (letter_id,),
    )
