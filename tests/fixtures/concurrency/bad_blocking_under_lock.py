"""NBL011 fixture: blocking work while holding a lock.

``direct`` executes SQL inside the lock; ``transitive`` calls a helper
that executes two frames down — the interprocedural case; ``sleepy``
parks the thread with the lock held.  ``fine`` does the same work with
the lock released first and must NOT be flagged.
"""

import threading
import time


class Cache:
    def __init__(self, connection) -> None:
        self._lock = threading.Lock()
        self._conn = connection
        self._rows = {}

    def direct(self, key: str):
        with self._lock:
            row = self._conn.execute(
                "SELECT v FROM kv WHERE k = ?", (key,)
            ).fetchone()  # BUG: sqlite round-trip under the lock
            self._rows[key] = row
            return row

    def transitive(self, key: str):
        with self._lock:
            return self._refresh(key)  # BUG: _refresh blocks two frames down

    def sleepy(self) -> None:
        with self._lock:
            time.sleep(0.5)  # BUG: parks every other caller

    def fine(self, key: str):
        row = self._refresh_unlocked(key)
        with self._lock:
            self._rows[key] = row
        return row

    def _refresh(self, key: str):
        return self._probe(key)

    def _probe(self, key: str):
        return self._conn.execute(
            "SELECT v FROM kv WHERE k = ?", (key,)
        ).fetchone()

    def _refresh_unlocked(self, key: str):
        return self._conn.execute(
            "SELECT v FROM kv WHERE k = ?", (key,)
        ).fetchone()
