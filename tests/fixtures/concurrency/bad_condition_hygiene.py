"""NBL012 fixture: condition-variable misuse.

``take_once`` waits behind an ``if`` instead of a ``while`` (a stolen
wakeup returns an empty hand); ``poke`` notifies without the lock;
``naked_wait`` waits without holding the condition.  ``take`` is the
correct shape and must NOT be flagged.
"""

import threading


class Mailbox:
    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._items = []

    def put(self, item) -> None:
        with self._condition:
            self._items.append(item)
            self._condition.notify()

    def take_once(self):
        with self._condition:
            if not self._items:  # BUG: predicate checked once, not re-checked
                self._condition.wait(1.0)
            return self._items.pop(0) if self._items else None

    def take(self):
        with self._condition:
            while not self._items:
                self._condition.wait()
            return self._items.pop(0)

    def poke(self) -> None:
        self._condition.notify()  # BUG: notify without holding the condition

    def naked_wait(self) -> None:
        self._condition.wait(0.1)  # BUG: wait() without holding the condition
