"""NBL010 fixture: sqlite handles crossing thread boundaries.

Three escape shapes: a closure over the handle submitted to an
executor, the handle itself passed as a Thread argument, and the handle
handed to a helper whose parameter reaches ``submit`` one call away.
"""

import sqlite3
import threading
from concurrent.futures import ThreadPoolExecutor


def closure_escape(path: str, pool: ThreadPoolExecutor):
    conn = sqlite3.connect(path)

    def work():
        return conn.execute("SELECT 1").fetchone()

    return pool.submit(work)  # BUG: closure drags conn into the pool


def handle_escape(path: str) -> None:
    conn = sqlite3.connect(path)
    worker = threading.Thread(target=run_on, args=(conn,))  # BUG
    worker.start()
    worker.join()


def indirect_escape(path: str, pool: ThreadPoolExecutor):
    conn = sqlite3.connect(path)
    return fan_out(pool, conn)  # BUG: fan_out ships its param to a thread


def fan_out(pool: ThreadPoolExecutor, connection):
    return pool.submit(run_on, connection)


def run_on(connection):
    return connection.execute("SELECT 1").fetchone()
