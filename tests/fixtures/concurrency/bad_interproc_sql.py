"""Interprocedural NBL001 fixture: taint crossing call boundaries.

The per-statement PR-3 resolver sees only opaque names at every execute
site here and reports nothing — the regression test asserts exactly
that.  The interprocedural layer must catch both directions:

* ``query_by_name`` executes the *return value* of an unsafe builder
  (taint flows out of ``build_filter`` through ``assemble``);
* ``caller`` passes an f-string into ``run_query``, whose parameter
  reaches ``execute`` (taint flows into a sink parameter).
"""


def build_filter(name: str) -> str:
    return f"WHERE name = '{name}'"  # unsafe: value interpolated


def assemble(name: str) -> str:
    clause = build_filter(name)
    return "SELECT * FROM annotations " + clause


def query_by_name(connection, name: str):
    sql = assemble(name)
    return connection.execute(sql).fetchall()  # BUG, two calls away


def run_query(connection, sql: str):
    return connection.execute(sql).fetchall()


def caller(connection, table: str):
    return run_query(connection, f"SELECT * FROM {table}")  # BUG at the call
