"""NBL010 good twin: per-thread handles, no escapes.

The worker opens its own connection, bound methods go to ``submit``
without dragging a handle along, and a closure that captures a handle
but runs inline is not a thread crossing.
"""

import sqlite3
from concurrent.futures import ThreadPoolExecutor


def per_thread(path: str, pool: ThreadPoolExecutor):
    def work():
        conn = sqlite3.connect(path)  # opened inside the worker: fine
        try:
            return conn.execute("SELECT 1").fetchone()
        finally:
            conn.close()

    return pool.submit(work)


def inline_closure(path: str):
    conn = sqlite3.connect(path)

    def probe():
        return conn.execute("SELECT 1").fetchone()

    try:
        return probe()  # invoked on this thread, never shipped
    finally:
        conn.close()
