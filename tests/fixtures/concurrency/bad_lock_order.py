"""NBL009 fixture (lock order): two locks taken in both orders."""

import threading


class Transfer:
    def __init__(self) -> None:
        self._alpha = threading.Lock()
        self._beta = threading.Lock()
        self._a = 0
        self._b = 0

    def left_to_right(self, amount: int) -> None:
        with self._alpha:
            with self._beta:
                self._a -= amount
                self._b += amount

    def right_to_left(self, amount: int) -> None:
        with self._beta:
            with self._alpha:  # BUG: inverse order of left_to_right
                self._b -= amount
                self._a += amount
