"""NBL009 fixture: a field guarded in one method, bare in another.

``_pending`` is mutated under ``self._lock`` in ``add`` but written
lock-free in ``reset`` — the classic torn-counter race.  ``_total`` is
*never* guarded anywhere, which is the documented single-writer fast
path and must NOT be flagged.
"""

import threading


class Tally:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pending = 0
        self._total = 0

    def add(self, amount: int) -> None:
        with self._lock:
            self._pending += amount

    def reset(self) -> None:
        self._pending = 0  # BUG: no lock, but add() guards this field

    def bump_total(self) -> None:
        self._total += 1  # fine: never lock-guarded anywhere (single writer)

    def read_total(self) -> int:
        return self._total
