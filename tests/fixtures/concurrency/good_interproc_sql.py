"""Interprocedural NBL001 good twin: parameterized all the way through."""


def build_filter() -> str:
    return "WHERE name = ?"


def assemble() -> str:
    return "SELECT * FROM annotations " + build_filter()


def query_by_name(connection, name: str):
    return connection.execute(assemble(), (name,)).fetchall()


def run_query(connection, sql: str, params):
    return connection.execute(sql, params).fetchall()


def caller(connection, name: str):
    return run_query(connection, "SELECT * FROM annotations WHERE name = ?", (name,))
