"""Unit tests for signature-map construction (Stage 1, Steps 1-3)."""

import pytest

from repro.core.signature_maps import (
    SHAPE_COLUMN,
    SHAPE_TABLE,
    SHAPE_VALUE,
    build_concept_map,
    build_context_map,
    build_value_map,
    overlay_maps,
)
from repro.utils.tokenize import tokenize

from conftest import build_figure1_meta


@pytest.fixture
def meta():
    return build_figure1_meta()


class TestConceptMap:
    def test_table_word_emphasized(self, meta):
        tokens = tokenize("the gene JW0014")
        entries = build_concept_map(tokens, meta, epsilon=0.6)
        assert 1 in entries
        assert SHAPE_TABLE in entries[1].shapes()

    def test_value_word_not_in_concept_map(self, meta):
        tokens = tokenize("the gene JW0014")
        entries = build_concept_map(tokens, meta, epsilon=0.6)
        assert 2 not in entries

    def test_cutoff_drops_synonyms(self, meta):
        tokens = tokenize("this cistron here")  # lexicon synonym, score 0.65
        loose = build_concept_map(tokens, meta, epsilon=0.6)
        tight = build_concept_map(tokens, meta, epsilon=0.8)
        assert 1 in loose
        assert 1 not in tight

    def test_column_word_shape(self, meta):
        tokens = tokenize("the family column")
        entries = build_concept_map(tokens, meta, epsilon=0.6)
        assert SHAPE_COLUMN in entries[1].shapes()

    def test_mappings_below_epsilon_removed(self, meta):
        tokens = tokenize("gene")
        entries = build_concept_map(tokens, meta, epsilon=0.9)
        assert all(
            m.weight >= 0.9 for e in entries.values() for m in e.mappings
        )


class TestValueMap:
    def test_identifier_emphasized(self, meta):
        tokens = tokenize("about JW0014 today")
        entries = build_value_map(tokens, meta, epsilon=0.6)
        assert 1 in entries
        assert entries[1].shapes() == (SHAPE_VALUE,)

    def test_gene_name_case_matters(self, meta):
        # Exact-case pattern evidence scores 0.9; casefolded-only evidence
        # scores 0.6 — visible at the tight 0.8 cutoff.
        strong = build_value_map(tokenize("grpC"), meta, epsilon=0.8)
        weak = build_value_map(tokenize("GRPC"), meta, epsilon=0.8)
        assert 0 in strong
        assert 0 not in weak
        loose = build_value_map(tokenize("GRPC"), meta, epsilon=0.6)
        assert 0 in loose  # casefold evidence admits at the loose cutoff

    def test_plain_word_not_emphasized(self, meta):
        entries = build_value_map(tokenize("spectacular"), meta, epsilon=0.6)
        assert entries == {}

    def test_ontology_value(self, meta):
        entries = build_value_map(tokenize("an enzyme assay"), meta, epsilon=0.6)
        assert 1 in entries
        assert entries[1].mappings[0].column == "PType"


class TestOverlay:
    def test_overlay_merges_shapes(self, meta):
        tokens = tokenize("gene JW0014")
        concept = build_concept_map(tokens, meta, epsilon=0.6)
        value = build_value_map(tokens, meta, epsilon=0.6)
        context = overlay_maps(tokens, concept, value)
        assert context.emphasized_positions() == [0, 1]

    def test_word_with_both_kinds_of_mappings(self, meta):
        # "enzyme" is a lexicon synonym of the Protein table name AND an
        # ontology member of Protein.PType: both mappings must coexist.
        context = build_context_map("the enzyme levels", meta, epsilon=0.6)
        entry = context.entry_at(1)
        assert entry is not None
        shapes = set(entry.shapes())
        assert SHAPE_VALUE in shapes and SHAPE_TABLE in shapes

    def test_neighbors_respect_alpha(self, meta):
        context = build_context_map("gene one two three JW0014", meta, epsilon=0.6)
        # positions: gene=0, jw0014=4; alpha=3 excludes, alpha=4 includes.
        assert context.entries.keys() == {0, 4}
        assert context.neighbors(4, alpha=3) == []
        assert [e.position for e in context.neighbors(4, alpha=4)] == [0]

    def test_render_shows_placeholders(self, meta):
        context = build_context_map("the gene JW0014", meta, epsilon=0.6)
        rendered = context.render()
        assert rendered.startswith("- ")
        assert "gene[" in rendered and "JW0014[" in rendered

    def test_best_prefers_higher_weight(self, meta):
        context = build_context_map("gene", meta, epsilon=0.6)
        best = context.entry_at(0).best()
        assert best.shape == SHAPE_TABLE
        assert best.weight == pytest.approx(0.95)
