"""Unit tests for the schema graph and join-path search."""

import sqlite3

import pytest

from repro.errors import UnknownTableError
from repro.search.metadata import ColumnInfo, ForeignKey, SchemaGraph

from conftest import build_figure1_connection


@pytest.fixture
def schema():
    return SchemaGraph.from_connection(build_figure1_connection())


class TestIntrospection:
    def test_tables_found(self, schema):
        assert schema.tables == ("Gene", "Protein")

    def test_columns_found(self, schema):
        names = {c.name for c in schema.columns_of("Gene")}
        assert names == {"GID", "Name", "Length", "Seq", "Family"}

    def test_primary_key_flag(self, schema):
        gid = schema.column("Gene", "GID")
        assert gid is not None and gid.is_primary_key

    def test_foreign_key_found(self, schema):
        assert any(
            fk.child_table == "Protein" and fk.parent_table == "Gene"
            for fk in schema.foreign_keys
        )

    def test_internal_tables_hidden(self):
        connection = build_figure1_connection()
        connection.execute("CREATE TABLE _nebula_junk (x)")
        connection.execute("CREATE TABLE _minidb_junk (x)")
        schema = SchemaGraph.from_connection(connection)
        assert schema.tables == ("Gene", "Protein")

    def test_text_columns(self, schema):
        text_columns = {c.qualified for c in schema.text_columns()}
        assert "Gene.Name" in text_columns
        assert "Gene.Length" not in text_columns

    def test_unknown_table_raises(self, schema):
        with pytest.raises(UnknownTableError):
            schema.columns_of("Nope")

    def test_case_insensitive_lookup(self, schema):
        assert schema.canonical_table("gene") == "Gene"
        assert schema.column("gene", "gid").name == "GID"


class TestJoinPaths:
    def test_self_path_is_empty(self, schema):
        assert schema.join_path("Gene", "Gene") == []

    def test_direct_fk_path(self, schema):
        path = schema.join_path("Protein", "Gene")
        assert len(path) == 1
        assert path[0].fk.child_table == "Protein"

    def test_path_is_bidirectional(self, schema):
        assert len(schema.join_path("Gene", "Protein")) == 1

    def test_multi_hop_path(self):
        connection = sqlite3.connect(":memory:")
        connection.executescript(
            """
            CREATE TABLE A (id INTEGER PRIMARY KEY);
            CREATE TABLE B (id INTEGER PRIMARY KEY, a_id INTEGER REFERENCES A(id));
            CREATE TABLE C (id INTEGER PRIMARY KEY, b_id INTEGER REFERENCES B(id));
            """
        )
        schema = SchemaGraph.from_connection(connection)
        path = schema.join_path("A", "C")
        assert [s.target for s in path] == ["B", "C"]

    def test_unconnected_tables(self):
        connection = sqlite3.connect(":memory:")
        connection.executescript(
            "CREATE TABLE A (id INTEGER); CREATE TABLE B (id INTEGER);"
        )
        schema = SchemaGraph.from_connection(connection)
        assert schema.join_path("A", "B") is None
        assert not schema.are_connected("A", "B")

    def test_shortest_path_chosen(self):
        # A-B-D and A-C-D plus a direct A-D edge: BFS must take A-D.
        connection = sqlite3.connect(":memory:")
        connection.executescript(
            """
            CREATE TABLE D (id INTEGER PRIMARY KEY);
            CREATE TABLE B (id INTEGER PRIMARY KEY, d_id INTEGER REFERENCES D(id));
            CREATE TABLE A (
                id INTEGER PRIMARY KEY,
                b_id INTEGER REFERENCES B(id),
                d_id INTEGER REFERENCES D(id)
            );
            """
        )
        schema = SchemaGraph.from_connection(connection)
        assert len(schema.join_path("A", "D")) == 1


class TestForeignKey:
    def test_join_condition_rendering(self):
        fk = ForeignKey("Protein", "GID", "Gene", "GID")
        assert fk.join_condition("p", "g") == "p.GID = g.GID"


class TestColumnInfo:
    def test_is_text(self):
        assert ColumnInfo("T", "c", "TEXT", False).is_text
        assert not ColumnInfo("T", "c", "INTEGER", False).is_text
        assert not ColumnInfo("T", "c", "REAL", False).is_text
        assert ColumnInfo("T", "c", "", False).is_text
