"""Metrics-scrape smoke: /metrics stays valid during live ingestion.

Starts an :class:`~repro.service.AnnotationService` over a generated
bio-database with its telemetry HTTP endpoint on an ephemeral port,
then drives concurrent client threads through the admission-controlled
queue while the main thread scrapes ``/metrics`` and ``/healthz`` at
least three times.  Every scrape is run through the validating
exposition parser: each line must type-check against its family, and
every histogram's cumulative buckets must be monotone with the ``+Inf``
bucket equal to ``_count``.

Also asserts the telemetry invariants themselves — the service reports
up/ready while running, the latency-percentile gauges appear once
requests flow, and the final scrape's counters match the closed-world
request accounting.

Honors ``NEBULA_BACKEND`` (``sqlite-file`` / ``sqlite-memory``) so the
CI matrix drives the same scenario through both bundled storage
engines.  Exits non-zero on any violated invariant.

Run::

    PYTHONPATH=src python examples/metrics_scrape_smoke.py
    NEBULA_BACKEND=sqlite-memory PYTHONPATH=src \
        python examples/metrics_scrape_smoke.py
"""

import json
import os
import sys
import tempfile
import threading
import time

from repro import (
    AnnotationService,
    BioDatabaseSpec,
    Nebula,
    NebulaConfig,
    ServiceConfig,
    generate_bio_database,
    get_backend,
    parse_exposition,
    validate_exposition,
)
from repro.errors import ServiceOverloadedError
from repro.observability import scrape

CLIENTS = 4
REQUESTS_PER_CLIENT = 6
SCRAPES = 3


def main() -> int:
    engine = os.environ.get("NEBULA_BACKEND", "sqlite-file")
    path = None
    if engine == "sqlite-file":
        handle = tempfile.NamedTemporaryFile(
            suffix=".db", prefix="nebula-scrape-smoke-", delete=False
        )
        handle.close()
        path = handle.name
    backend = get_backend(engine, path=path)
    db = generate_bio_database(
        BioDatabaseSpec(genes=60, proteins=36, publications=240, seed=17),
        backend=backend,
    )
    nebula = Nebula(
        backend, db.meta, NebulaConfig(epsilon=0.6), aliases=db.aliases
    )
    service = AnnotationService(
        nebula,
        ServiceConfig(queue_capacity=32, max_batch=8, flush_interval=0.02),
    ).start()
    server = service.serve_metrics(port=0)
    print(f"telemetry up on {backend.name}: {server.url}metrics")

    counts = {"ok": 0, "rejected": 0, "failed": 0}
    lock = threading.Lock()

    def client(c: int) -> None:
        for i in range(REQUESTS_PER_CLIENT):
            gene = db.genes[(c * REQUESTS_PER_CLIENT + i) % len(db.genes)]
            try:
                ticket = service.submit(
                    f"scrape client {c} note {i}: gene {gene.gid} "
                    "flagged during review",
                    author=f"client-{c}",
                )
            except ServiceOverloadedError:
                with lock:
                    counts["rejected"] += 1
                continue
            try:
                ticket.result(timeout=60.0)
                outcome = "ok"
            except Exception:
                outcome = "failed"
            with lock:
                counts[outcome] += 1
            time.sleep(0.01)  # keep ingestion live across the scrapes

    threads = [
        threading.Thread(target=client, args=(c,), name=f"client-{c}")
        for c in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()

    failures = []
    scraped = 0
    try:
        # Scrape while the clients are (still) ingesting.
        for attempt in range(SCRAPES):
            text = scrape(server.url + "metrics", timeout=10.0)
            try:
                validate_exposition(text)
            except ValueError as error:
                failures.append(f"scrape {attempt + 1} invalid: {error}")
                continue
            families = parse_exposition(text)
            scraped += 1
            if families["nebula_service_up"].value() != 1.0:
                failures.append(f"scrape {attempt + 1}: service not up")
            health = json.loads(scrape(server.url + "healthz", timeout=10.0))
            if health["status"] not in ("ok", "degraded"):
                failures.append(
                    f"scrape {attempt + 1}: healthz status {health['status']!r}"
                )
            ready = scrape(server.url + "readyz", timeout=10.0)
            if ready.strip() != "ready":
                failures.append(f"scrape {attempt + 1}: readyz said {ready!r}")
            time.sleep(0.05)
    finally:
        for thread in threads:
            thread.join()

    # One final scrape after the clients finish: counters must close the
    # books, and the latency gauges must have materialized.
    text = scrape(server.url + "metrics", timeout=10.0)
    validate_exposition(text)
    families = parse_exposition(text)
    stats = service.stats()
    clean = service.stop()
    server.stop()

    if scraped < SCRAPES:
        failures.append(f"only {scraped}/{SCRAPES} live scrapes validated")
    submitted = families["nebula_service_submitted_total"].value() or 0.0
    ingested = families["nebula_service_ingested_total"].value() or 0.0
    if int(submitted) != counts["ok"] + counts["failed"]:
        failures.append(
            f"submitted counter {submitted:g} != admitted "
            f"{counts['ok'] + counts['failed']}"
        )
    if int(ingested) != counts["ok"]:
        failures.append(f"ingested counter {ingested:g} != acked {counts['ok']}")
    latency = families.get("nebula_service_latency_seconds")
    if latency is None:
        failures.append("latency percentile gauges never appeared")
    else:
        for phase in ("queue", "flush", "e2e"):
            p95 = latency.value({"phase": phase, "quantile": "p95"})
            if p95 is None or p95 < 0.0:
                failures.append(f"missing p95 gauge for phase {phase!r}")
    if stats.ingested != counts["ok"]:
        failures.append(
            f"stats.ingested {stats.ingested} != acked {counts['ok']}"
        )
    if not clean:
        failures.append("shutdown was not clean")

    nebula.close()
    backend.close()
    if path is not None and os.path.exists(path):
        os.unlink(path)
    if failures:
        for failure in failures:
            print(f"SCRAPE SMOKE FAILURE: {failure}", file=sys.stderr)
        return 1
    print(
        f"metrics scrape smoke passed: {scraped} live scrapes validated, "
        f"{counts['ok']} acked / {counts['rejected']} rejected, "
        "clean shutdown"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
