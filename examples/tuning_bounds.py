"""Adaptive tuning of the verification bounds (paper §7, Figure 9).

Walks the BoundsSetting workflow:

1. build D_Training from the database's own annotations (attachments
   known to be complete) and distort each to Δ = 1 surviving link;
2. rediscover the missing attachments with the regular pipeline;
3. sweep the (β_lower, β_upper) grid, reporting how the four assessment
   criteria move across the surface;
4. pick the setting that minimizes expert effort M_F within the F_N/F_P
   limits, and show the degenerate no-expert alternative for contrast.

Run:  python examples/tuning_bounds.py
"""

from repro import (
    BioDatabaseSpec,
    BoundsSetting,
    Nebula,
    NebulaConfig,
    generate_bio_database,
)
from repro.core.bounds import TrainingSample
from repro.utils.rng import make_rng


def build_training_samples(db, nebula, count=80, delta=1):
    rng = make_rng(1, "example-training")
    truths = list(db.truths.values())
    rng.shuffle(truths)
    samples = []
    for truth in truths:
        if len(samples) >= count:
            break
        if len(truth.refs) <= delta:
            continue
        focal = tuple(sorted(rng.sample(list(truth.refs), delta)))
        annotation = db.manager.annotation(truth.annotation_id)
        result = nebula.analyze(annotation.content, focal=focal)
        samples.append(
            TrainingSample(
                candidates=tuple(result.candidates),
                ideal=frozenset(truth.refs),
                focal=focal,
            )
        )
    return samples


def main() -> None:
    db = generate_bio_database(
        BioDatabaseSpec(genes=400, proteins=240, publications=1000, seed=5)
    )
    nebula = Nebula(db.connection, db.meta, NebulaConfig(epsilon=0.6),
                    aliases=db.aliases)

    print("building D_Training (distorted to delta = 1)...")
    samples = build_training_samples(db, nebula)
    print(f"  {len(samples)} training annotations rediscovered\n")

    setting = BoundsSetting(fn_limit=0.30, fp_limit=0.10)

    print("a slice of the sweep surface:")
    print("  lower  upper |   F_N    F_P    M_F    M_H")
    for lower, upper in [(0.1, 0.9), (0.3, 0.9), (0.3, 0.7), (0.5, 0.7),
                         (0.2, 0.5), (0.5, 0.5)]:
        a = setting.evaluate(samples, lower, upper)
        print(
            f"  {lower:5.2f}  {upper:5.2f} | {a.f_n:6.3f} {a.f_p:6.3f} "
            f"{a.m_f:5d}  {a.m_h:5.2f}"
        )

    chosen = setting.tune(samples)
    print(
        f"\nchosen bounds: ({chosen.beta_lower:.2f}, {chosen.beta_upper:.2f})"
        f"  F_N={chosen.assessment.f_n:.3f}  F_P={chosen.assessment.f_p:.3f}"
        f"  M_F={chosen.assessment.m_f}  M_H={chosen.assessment.m_h:.2f}"
    )

    no_expert = setting.evaluate(samples, 0.5, 0.5)
    print(
        f"degenerate (0.50, 0.50) — zero expert effort — costs accuracy:"
        f"  F_N={no_expert.f_n:.3f}  F_P={no_expert.f_p:.3f}"
    )

    print(
        "\nconclusion (paper §8.2): eliminating the experts entirely is not"
        "\nfeasible; a tuned two-sided band keeps F_N/F_P low at a modest M_F."
    )


if __name__ == "__main__":
    main()
