"""Service smoke: concurrent clients against the annotation service.

Starts an :class:`~repro.service.AnnotationService` over a generated
bio-database and fires at least four concurrent clients at it, each
mixing ingestion (admission-controlled submissions through the bounded
queue) with searches (served by concurrent readers).  Asserts the
closed-world accounting — every request either acknowledged, failed, or
rejected, none lost — and a clean, bounded shutdown.

Honors ``NEBULA_BACKEND`` (``sqlite-file`` / ``sqlite-memory``) so the
CI matrix drives the same scenario through both bundled storage engines.
Exits non-zero on any violated invariant.

Run::

    PYTHONPATH=src python examples/service_smoke.py
    NEBULA_BACKEND=sqlite-memory PYTHONPATH=src python examples/service_smoke.py
"""

import os
import sys
import tempfile
import threading

from repro import (
    AnnotationService,
    BioDatabaseSpec,
    Nebula,
    NebulaConfig,
    ServiceConfig,
    generate_bio_database,
    get_backend,
)
from repro.errors import ServiceOverloadedError

CLIENTS = 4
REQUESTS_PER_CLIENT = 8


def main() -> int:
    engine = os.environ.get("NEBULA_BACKEND", "sqlite-file")
    path = None
    if engine == "sqlite-file":
        handle = tempfile.NamedTemporaryFile(
            suffix=".db", prefix="nebula-service-smoke-", delete=False
        )
        handle.close()
        path = handle.name
    backend = get_backend(engine, path=path)
    db = generate_bio_database(
        BioDatabaseSpec(genes=60, proteins=36, publications=240, seed=13),
        backend=backend,
    )
    nebula = Nebula(
        backend, db.meta, NebulaConfig(epsilon=0.6), aliases=db.aliases
    )
    service = AnnotationService(
        nebula,
        ServiceConfig(queue_capacity=32, max_batch=8, flush_interval=0.02),
    ).start()
    print(f"service up on {backend.name}: {service.health()}")

    counts = {"ok": 0, "rejected": 0, "failed": 0, "reads": 0}
    lock = threading.Lock()

    def client(c: int) -> None:
        for i in range(REQUESTS_PER_CLIENT):
            gene = db.genes[(c * REQUESTS_PER_CLIENT + i) % len(db.genes)]
            try:
                ticket = service.submit(
                    f"smoke client {c} note {i}: gene {gene.gid} "
                    "flagged during review",
                    author=f"client-{c}",
                )
            except ServiceOverloadedError:
                with lock:
                    counts["rejected"] += 1
                continue
            try:
                ticket.result(timeout=60.0)
                outcome = "ok"
            except Exception:
                outcome = "failed"
            with lock:
                counts[outcome] += 1
            # Interleave reads with writes: these must never block on
            # (or be blocked by) the single writer.
            service.find_annotations(f"client {c} note", limit=5)
            service.annotation_count()
            with lock:
                counts["reads"] += 2

    threads = [
        threading.Thread(target=client, args=(c,), name=f"client-{c}")
        for c in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    stats = service.stats()
    clean = service.stop()
    stored = counts["ok"]  # each acked ticket is one committed annotation
    attempts = CLIENTS * REQUESTS_PER_CLIENT
    accounted = counts["ok"] + counts["failed"] + counts["rejected"]
    print(
        f"{attempts} requests: {counts['ok']} acked, "
        f"{counts['rejected']} rejected, {counts['failed']} failed, "
        f"{counts['reads']} interleaved reads; "
        f"{stats.batches} writer batches; clean shutdown={clean}"
    )

    failures = []
    if accounted != attempts:
        failures.append(f"lost {attempts - accounted} request(s)")
    if stats.ingested != stored:
        failures.append(
            f"acked {stored} but service ingested {stats.ingested}"
        )
    if not clean:
        failures.append("shutdown was not clean")
    found = [
        row
        for c in range(CLIENTS)
        for row in service.find_annotations(f"smoke client {c} note", limit=100)
    ]
    if len(found) != stored:
        failures.append(f"readers see {len(found)} annotations, acked {stored}")

    nebula.close()
    backend.close()
    if path is not None and os.path.exists(path):
        os.unlink(path)
    if failures:
        for failure in failures:
            print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
        return 1
    print("service smoke passed: zero lost requests, clean shutdown")
    return 0


if __name__ == "__main__":
    sys.exit(main())
