"""Approximate focal-based spreading search in action (paper §6.3).

Shows the full lifecycle of the approximation machinery:

1. stream annotations into the ACG and watch the stability flag flip
   (Definition 6.1);
2. build the hop-distance profile from discovery history (Figure 7);
3. let the profile auto-select the radius K for a target coverage;
4. compare a full-database search against the K-hop mini-database search
   for the same new annotation.

Run:  python examples/approximate_search.py
"""

import time

from repro import (
    BioDatabaseSpec,
    Nebula,
    NebulaConfig,
    generate_bio_database,
    generate_workload,
)
from repro.core.acg import AnnotationsConnectivityGraph, StabilityTracker
from repro.datagen.workload import WorkloadSpec


def main() -> None:
    db = generate_bio_database(
        BioDatabaseSpec(genes=480, proteins=288, publications=2000,
                        community_size=8, seed=99)
    )
    workload = generate_workload(db, WorkloadSpec(seed=7))
    nebula = Nebula(db.connection, db.meta, NebulaConfig(epsilon=0.6),
                    aliases=db.aliases)

    # ------------------------------------------------------------------
    # 1. ACG stability over the annotation stream (Definition 6.1).
    # ------------------------------------------------------------------
    print("== ACG stability over the annotation stream ==")
    acg = AnnotationsConnectivityGraph()
    tracker = StabilityTracker(batch_size=200, mu=0.5)
    per_annotation = {}
    for annotation_id, ref in db.manager.store.true_attachment_pairs():
        per_annotation.setdefault(annotation_id, []).append(ref)
    for annotation_id in sorted(per_annotation):
        refs = per_annotation[annotation_id]
        new_edges = sum(acg.add_attachment(annotation_id, r) for r in refs)
        flipped = tracker.record_annotation(len(refs), new_edges)
        if flipped is not None:
            m, n, stable = tracker.history[-1]
            print(
                f"  batch {len(tracker.history):2}: M={m:5} new-edges N={n:5} "
                f"ratio={n / max(1, m):.3f}  stable={stable}"
            )
    print(f"  final state: stable={tracker.stable}")

    # ------------------------------------------------------------------
    # 2. Build the hop profile from discovery history (Figure 7).
    # ------------------------------------------------------------------
    print("\n== hop-distance profile from the first 40 workload annotations ==")
    for annotation in workload.annotations[:40]:
        focal = annotation.focal(1)
        result = nebula.analyze(annotation.text, focal=focal)
        for candidate in result.candidates:
            if candidate.ref not in focal:
                nebula.profile.record(nebula.acg.shortest_hops(candidate.ref, focal))
    for hops, count, coverage in nebula.profile.as_rows(k_max=5):
        bar = "#" * int(40 * count / max(1, nebula.profile.total))
        print(f"  {hops} hops: {count:4}  cum={coverage:5.1%}  {bar}")

    # ------------------------------------------------------------------
    # 3. Profile-guided K.
    # ------------------------------------------------------------------
    for target in (0.7, 0.9, 0.97):
        print(f"  K for {target:.0%} coverage -> {nebula.profile.select_k(target)}")

    # ------------------------------------------------------------------
    # 4. Full search vs spreading search for one new annotation.
    # ------------------------------------------------------------------
    print("\n== full vs spreading search for a new annotation ==")
    annotation = workload.group(100)[-1]
    focal = annotation.focal(2)
    started = time.perf_counter()
    full = nebula.analyze(annotation.text, focal=focal, use_spreading=False)
    full_time = time.perf_counter() - started
    started = time.perf_counter()
    spread = nebula.analyze(annotation.text, focal=focal, use_spreading=True)
    spread_time = time.perf_counter() - started
    print(f"  full search:      {len(full.candidates)} candidates, "
          f"{full_time * 1e3:.2f} ms (entire database)")
    print(f"  spreading search: {len(spread.candidates)} candidates, "
          f"{spread_time * 1e3:.2f} ms (scope: {spread.scope_size} tuples, "
          f"K={spread.radius})")
    missing = set(annotation.missing(focal))
    print(f"  missing attachments found: full="
          f"{len(missing & set(full.identified.refs))}/{len(missing)}  "
          f"spreading={len(missing & set(spread.identified.refs))}/{len(missing)}")


if __name__ == "__main__":
    main()
