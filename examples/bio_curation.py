"""Motivation Scenario 1 — Bob & Alice's curation session (paper Figure 1).

Recreates the paper's introductory example on a hand-built database:

* Bob attaches a scientific article to gene JW0013; the article also
  references genes yaaB and yaaI and the protein G-Actin;
* Alice attaches a comment to gene JW0019; the comment also references
  genes JW0014 and grpC.

Neither curator creates those extra links — the database is
*under-annotated* — and Nebula proactively discovers them.

Run:  python examples/bio_curation.py
"""

import sqlite3

from repro import (
    CellRef,
    TupleRef,
    ConceptRef,
    Nebula,
    NebulaConfig,
    NebulaMeta,
    Ontology,
    ValuePattern,
    propagate,
)
from repro.meta.sampling import ColumnSample

GENES = [
    ("JW0013", "grpC", 1130, "TGCT", "F1"),
    ("JW0014", "groP", 1916, "GGTT", "F6"),
    ("JW0015", "insL", 1112, "GGCT", "F1"),
    ("JW0018", "nhaA", 1166, "CGTT", "F1"),
    ("JW0019", "yaaB", 905, "TGTG", "F3"),
    ("JW0012", "yaaI", 404, "TTCG", "F1"),
    ("JW0027", "namE", 658, "GTTT", "F4"),
]

PROTEINS = [
    ("P00001", "G-Actin", "enzyme", "JW0013", 41.8),
    ("P00002", "Ligase42", "ligase", "JW0014", 103.2),
]

BOB_ARTICLE = (
    "Abstract. We study the regulatory roles of gene yaaB and gene yaaI in "
    "the stress response pathway. Binding assays show the protein G-Actin "
    "mediates the observed interaction, with expression levels consistent "
    "across strains."
)

ALICE_COMMENT = (
    "From the exp, it seems this gene is correlated to JW0014 of grpC."
)


def build_database() -> sqlite3.Connection:
    connection = sqlite3.connect(":memory:")
    connection.executescript(
        """
        CREATE TABLE Gene (
            GID TEXT PRIMARY KEY, Name TEXT NOT NULL, Length INTEGER NOT NULL,
            Seq TEXT NOT NULL, Family TEXT NOT NULL
        );
        CREATE TABLE Protein (
            PID TEXT PRIMARY KEY, PName TEXT NOT NULL, PType TEXT NOT NULL,
            GID TEXT NOT NULL REFERENCES Gene(GID), Mass REAL NOT NULL
        );
        """
    )
    connection.executemany("INSERT INTO Gene VALUES (?, ?, ?, ?, ?)", GENES)
    connection.executemany("INSERT INTO Protein VALUES (?, ?, ?, ?, ?)", PROTEINS)
    return connection


def build_meta() -> NebulaMeta:
    """The ConceptRefs table of the paper's Figure 3, hand-populated."""
    meta = NebulaMeta()
    meta.add_concept(
        ConceptRef.build("Gene", "Gene", [["GID"], ["Name"]],
                         equivalent_names=["genes", "locus"])
    )
    meta.add_concept(
        ConceptRef.build("Protein", "Protein", [["PID"], ["PName", "PType"]],
                         equivalent_names=["proteins"])
    )
    meta.add_concept(ConceptRef.build("Gene Family", "Gene", [["Family"]]))
    meta.add_column_equivalents("Gene", "GID", ["id", "identifier"])
    meta.attach_pattern("Gene", "GID", ValuePattern(r"JW[0-9]{4}"))
    meta.attach_pattern("Gene", "Name", ValuePattern(r"[a-z]{3}[A-Z]"))
    meta.attach_pattern("Protein", "PID", ValuePattern(r"P[0-9]{5}"))
    meta.attach_ontology(
        "Protein", "PType", Ontology("ptype", ["enzyme", "ligase", "kinase"])
    )
    meta.attach_sample(ColumnSample("Protein", "PName", tuple(p[1] for p in PROTEINS)))
    meta.attach_sample(ColumnSample("Gene", "Family", ("F1", "F3", "F4", "F6")))
    return meta


def main() -> None:
    connection = build_database()
    nebula = Nebula(connection, build_meta(), NebulaConfig(epsilon=0.6))

    def rowid_of(gid: str) -> int:
        return connection.execute(
            "SELECT rowid FROM Gene WHERE GID = ?", (gid,)
        ).fetchone()[0]

    print("== Bob attaches an article to gene JW0013 ==")
    bob = nebula.insert_annotation(
        BOB_ARTICLE,
        attach_to=[TupleRef("Gene", rowid_of("JW0013"))],
        author="bob",
    )
    for task in bob.tasks:
        print(f"  predicted {task.ref} conf={task.confidence:.2f} -> {task.decision.value}")

    print("\n== Alice attaches a comment to gene JW0019 ==")
    alice = nebula.insert_annotation(
        ALICE_COMMENT,
        attach_to=[TupleRef("Gene", rowid_of("JW0019"))],
        author="alice",
    )
    for task in alice.tasks:
        print(f"  predicted {task.ref} conf={task.confidence:.2f} -> {task.decision.value}")

    print("\n== expert resolves any pending tasks ==")
    for task in nebula.pending_tasks():
        print(f"  VERIFY ATTACHMENT {task.task_id}  ({task.ref})")
        nebula.execute_command(f"VERIFY ATTACHMENT {task.task_id}")

    print("\n== the annotated answer of: SELECT * FROM Gene WHERE Family = 'F1' ==")
    for row in propagate(connection, "Gene", where="Family = 'F1'"):
        notes = [text[:46] + "..." for text, _ in row.annotations]
        print(f"  {row.values[0]:8} {row.values[1]:6} annotations={notes}")


if __name__ == "__main__":
    main()
