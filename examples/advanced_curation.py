"""Advanced curation features beyond the core pipeline.

Demonstrates the three extension mechanisms around Nebula's core:

1. **Predicate rules** (the structured automation of [18, 25]): an
   annotation attached by SQL predicate, automatically re-applied to
   newly inserted tuples;
2. **ConceptRefs learning** (paper footnote 2): mining the referencing
   columns from existing annotations instead of asking an expert;
3. **Spam guard** (paper footnote 1): quarantining an annotation whose
   predicted attachments would flood the database.

Run:  python examples/advanced_curation.py
"""

from repro import (
    BioDatabaseSpec,
    ConceptLearner,
    Nebula,
    NebulaConfig,
    NebulaMeta,
    RuleEngine,
    TupleRef,
    apply_proposals,
    generate_bio_database,
)
from repro.core.spam import SpamGuard


def main() -> None:
    db = generate_bio_database(
        BioDatabaseSpec(genes=150, proteins=90, publications=700, seed=17)
    )
    nebula = Nebula(db.connection, db.meta, NebulaConfig(epsilon=0.6),
                    aliases=db.aliases)

    # ------------------------------------------------------------------
    # 1. Predicate-based rules.
    # ------------------------------------------------------------------
    print("== predicate rules ==")
    rules = RuleEngine(nebula.manager)
    note = nebula.manager.add_annotation(
        "Curator note: long F1-family genes need re-sequencing.",
        author="curator",
    )
    rule, attached = rules.create_rule(
        note.annotation_id, "Gene", "Family = 'F1' AND Length > 1500"
    )
    print(f"  rule {rule.rule_id} attached the note to {attached} existing genes")

    cursor = db.connection.execute(
        "INSERT INTO Gene VALUES ('JW9001', 'newQ', 2200, 'ACGT', 'F1')"
    )
    fired = rules.process_new_tuple(TupleRef("Gene", cursor.lastrowid))
    print(f"  a newly inserted matching gene fired {len(fired)} rule(s)")

    # ------------------------------------------------------------------
    # 2. Learning ConceptRefs from the existing annotations.
    # ------------------------------------------------------------------
    print("\n== learning ConceptRefs from annotations ==")
    learner = ConceptLearner(nebula.manager, min_support=0.15,
                             min_attachments=20, max_annotations=400)
    proposals = learner.learn()
    for proposal in proposals:
        columns = ", ".join(
            f"{e.column} ({e.support:.0%})" for e in proposal.columns
        )
        print(f"  learned concept {proposal.table!r}: referenced by {columns}")

    fresh_meta = NebulaMeta()
    added = apply_proposals(fresh_meta, proposals, connection=db.connection)
    print(f"  {added} concept(s) registered into a fresh NebulaMeta")

    # ------------------------------------------------------------------
    # 3. The spam guard.
    # ------------------------------------------------------------------
    print("\n== spam guard ==")
    nebula.spam_guard = SpamGuard(max_candidates=3)
    genes = db.genes
    spammy = (
        f"We examined genes {genes[0].gid}, and later {genes[1].gid} and "
        f"later {genes[2].gid} and later {genes[3].gid} and later "
        f"{genes[4].gid} and later {genes[5].gid}."
    )
    report = nebula.insert_annotation(spammy, attach_to=[])
    verdict = report.spam_verdict
    if verdict is not None:
        print(
            f"  annotation quarantined: reason={verdict.reason} "
            f"candidates={verdict.candidate_count} "
            f"coverage={verdict.coverage:.1%}"
        )
        print(f"  verification tasks created: {len(report.tasks)}")
    else:
        print("  annotation passed the screen")


if __name__ == "__main__":
    main()
