"""Migration round-trip smoke: legacy -> up -> parity -> down -> legacy.

Builds a seed-era (pre-versioning) annotation database, runs the
:mod:`repro.versioning.migrations` chain forward, and asserts parity
with a freshly initialized versioned database holding the same logical
content — identical schema objects, identical state fingerprints, and a
head the commit log verifies against its own history.  Then reverts the
chain and asserts the legacy layout comes back intact (versioning
objects gone, the materialized latest state preserved), and finally
re-upgrades to prove the round trip is lossless.

Honors ``NEBULA_BACKEND`` (``sqlite-file`` / ``sqlite-memory``) so the
CI matrix drives the same scenario through both bundled storage engines.
Exits non-zero on any violated invariant.

Run::

    PYTHONPATH=src python examples/migration_roundtrip.py
    NEBULA_BACKEND=sqlite-memory PYTHONPATH=src python examples/migration_roundtrip.py
"""

import os
import sys
import tempfile

from repro import get_backend
from repro.versioning import (
    BASELINE_REVISION,
    CommitLog,
    MIGRATIONS,
    MigrationRunner,
    ensure_schema,
    timetravel,
)
from repro.versioning.schema import LEGACY_DDL

ANNOTATIONS = [
    (1, "curated note on the first gene", "ann", 1),
    (2, "a second, anonymous observation", None, 2),
    (3, "family-level remark", "bob", 3),
]

ATTACHMENTS = [
    (1, 1, "Gene", 1, None, None, 1.0, "true"),
    (2, 1, "Gene", 4, None, None, 0.8, "predicted"),
    (3, 2, "Gene", 2, None, "name", 1.0, "true"),
    (4, 3, "Protein", 1, 3, None, 0.6, "predicted"),
]


def _open(tag):
    engine = os.environ.get("NEBULA_BACKEND", "sqlite-file")
    path = None
    if engine == "sqlite-file":
        handle = tempfile.NamedTemporaryFile(
            suffix=".db", prefix=f"nebula-migrate-{tag}-", delete=False
        )
        handle.close()
        path = handle.name
    return get_backend(engine, path=path), path


def _seed_rows(connection):
    connection.executemany(
        "INSERT INTO _nebula_annotations VALUES (?, ?, ?, ?)", ANNOTATIONS
    )
    connection.executemany(
        "INSERT INTO _nebula_attachments VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
        ATTACHMENTS,
    )


def _schema_objects(connection):
    return {
        (str(r[0]), str(r[1]))
        for r in connection.execute(
            "SELECT type, name FROM sqlite_master "
            "WHERE type IN ('table', 'view', 'index') "
            "AND name NOT LIKE 'sqlite_%'"
        ).fetchall()
        if str(r[1]).startswith("_nebula")
    }


def _fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def main() -> int:
    legacy_backend, legacy_path = _open("legacy")
    fresh_backend, fresh_path = _open("fresh")
    try:
        # --- the seed-era world -------------------------------------
        legacy = legacy_backend.primary
        legacy.executescript(LEGACY_DDL)
        _seed_rows(legacy)
        runner = MigrationRunner(legacy)
        if runner.current_revision() != BASELINE_REVISION:
            return _fail("legacy database not baseline-stamped")

        # --- upgrade ------------------------------------------------
        applied = runner.upgrade()
        legacy.commit()
        expected = [m.revision for m in MIGRATIONS[1:]]
        if applied != expected:
            return _fail(f"applied {applied}, expected {expected}")
        log = CommitLog(legacy)
        if not log.verify_head():
            return _fail("head/log parity does not hold after upgrade")
        backfill = log.commits()[-1]
        if backfill.kind != "migrate":
            return _fail(f"backfill commit kind {backfill.kind!r}")

        # --- parity with a fresh versioned init ---------------------
        fresh = fresh_backend.primary
        ensure_schema(fresh)
        _seed_rows(fresh)
        fresh_log = CommitLog(fresh)
        with fresh_log.commit_scope("migrate", note="smoke backfill"):
            fresh_log.record_annotation_range(1, len(ANNOTATIONS))
            fresh_log.record_attachments_above(0)
        if _schema_objects(legacy) != _schema_objects(fresh):
            return _fail("upgraded schema differs from fresh init")
        if timetravel.state_fingerprint(legacy) != timetravel.state_fingerprint(fresh):
            return _fail("upgraded state differs from fresh init")
        pinned = timetravel.count_annotations(legacy, backfill.commit_id)
        if pinned != len(ANNOTATIONS):
            return _fail(f"as_of backfill sees {pinned} annotations")

        # --- downgrade ----------------------------------------------
        upgraded_head = timetravel.head_fingerprint(legacy)
        reverted = runner.downgrade()
        legacy.commit()
        if reverted != list(reversed(expected)):
            return _fail(f"reverted {reverted}")
        if runner.current_revision() != BASELINE_REVISION:
            return _fail("downgrade did not land on the baseline")
        names = {name for _, name in _schema_objects(legacy)}
        leaked = names & {
            "_nebula_commits",
            "_nebula_annotation_history",
            "_nebula_attachment_history",
        }
        if leaked:
            return _fail(f"versioning objects survived the downgrade: {leaked}")
        if timetravel.head_fingerprint(legacy) != upgraded_head:
            return _fail("latest state lost by the downgrade")

        # --- and back up: the round trip is lossless ----------------
        runner.upgrade()
        legacy.commit()
        if timetravel.head_fingerprint(legacy) != upgraded_head:
            return _fail("re-upgrade changed the latest state")
        if not CommitLog(legacy).verify_head():
            return _fail("head/log parity does not hold after re-upgrade")

        print(
            "migration roundtrip ok: "
            f"engine={os.environ.get('NEBULA_BACKEND', 'sqlite-file')} "
            f"chain={[m.revision for m in MIGRATIONS]} "
            f"annotations={len(ANNOTATIONS)} attachments={len(ATTACHMENTS)}"
        )
        return 0
    finally:
        legacy_backend.close()
        fresh_backend.close()
        for path in (legacy_path, fresh_path):
            if path is not None and os.path.exists(path):
                os.unlink(path)


if __name__ == "__main__":
    sys.exit(main())
