"""Quickstart: proactive annotation management in five minutes.

Builds a small synthetic curated bio-database, stands up the Nebula
engine, inserts a free-text annotation attached to one gene, and shows
how Nebula proactively discovers the annotation's *other* embedded
references — triaged into auto-accepted, pending, and rejected
attachments.

Run:  python examples/quickstart.py

Set ``NEBULA_TRACE=/path/to/trace.jsonl`` to run the pipeline with
structured tracing on: each pass appends its span tree to that file and
the script prints the trace plus the non-zero pipeline counters (the CI
smoke job validates the file with ``repro trace --validate``).
"""

import os

from repro import (
    BioDatabaseSpec,
    Nebula,
    NebulaConfig,
    generate_bio_database,
)
from repro.observability import format_trace, non_zero_counters


def main() -> None:
    # 1. A synthetic curated database: Gene / Protein / Publication tables
    #    where every publication is an annotation attached to the tuples
    #    it cites (see repro.datagen for the generator's guarantees).
    db = generate_bio_database(
        BioDatabaseSpec(genes=120, proteins=70, publications=600, seed=42)
    )
    print(
        f"database: {len(db.genes)} genes, {len(db.proteins)} proteins, "
        f"{db.manager.store.count_annotations()} publication-annotations"
    )

    # 2. The Nebula engine: ConceptRefs metadata, inverted value index,
    #    ACG built from the existing co-annotations.  NEBULA_TRACE turns
    #    on structured tracing (spans exported to the given JSONL file).
    trace_path = os.environ.get("NEBULA_TRACE")
    nebula = Nebula(
        db.connection,
        db.meta,
        NebulaConfig(
            epsilon=0.6,
            tracing=bool(trace_path),
            trace_path=trace_path or None,
        ),
        aliases=db.aliases,
    )
    print(
        f"ACG: {nebula.acg.node_count} annotated tuples, "
        f"{nebula.acg.edge_count} co-annotation edges"
    )

    # 3. A scientist attaches a comment to one gene... but the comment
    #    also references two other database objects.
    focal_gene = db.genes[10]
    referenced_gene = db.genes[11]
    referenced_protein = db.proteins[5]
    comment = (
        f"From the exp, it seems this gene is correlated to "
        f"{referenced_gene.gid} and interacts with protein "
        f"{referenced_protein.pname}."
    )
    print(f"\ninserting annotation attached to {focal_gene.gid}:")
    print(f"  {comment!r}")

    report = nebula.insert_annotation(
        comment,
        attach_to=[db.resolve("gene", focal_gene.gid)],
        author="alice",
    )

    # 4. Stage 1 produced keyword queries from the text...
    print(f"\ngenerated {report.query_count} keyword queries:")
    for query in report.generation.queries:
        print(f"  {query.keywords}  weight={query.weight:.2f}")

    # 5. ...Stage 2 found candidate tuples, Stage 3 triaged them.
    print("\nverification tasks:")
    for task in report.tasks:
        print(
            f"  {task.ref}  confidence={task.confidence:.2f}  "
            f"-> {task.decision.value}   evidence={task.evidence[:1]}"
        )

    # 6. Pending tasks await the expert; resolve via the SQL command.
    for task in nebula.pending_tasks(report.annotation_id):
        print(f"\nexpert verifying pending task {task.task_id} ({task.ref})")
        result = nebula.execute_command(f"VERIFY ATTACHMENT {task.task_id}")
        print(f"  {result.message}")

    # 7. The annotation is now attached to everything it references.
    final = nebula.manager.focal_of(report.annotation_id)
    print(f"\nfinal attachment set of the annotation: {[str(r) for r in final]}")
    expected = {
        db.resolve("gene", focal_gene.gid),
        db.resolve("gene", referenced_gene.gid),
        db.resolve("protein", referenced_protein.pid),
    }
    discovered = set(final) & expected
    print(f"discovered {len(discovered)}/{len(expected)} expected attachments")

    # 8. With NEBULA_TRACE set, show what the observability layer saw.
    if trace_path and report.trace is not None:
        print(f"\npipeline trace (appended to {trace_path}):")
        for line in format_trace(report.trace, indent=1):
            print(line)
        print("\nnon-zero pipeline counters:")
        for key in non_zero_counters(report.metrics):
            print(f"  {key} = {report.metrics['counters'][key]:g}")


if __name__ == "__main__":
    main()
